/**
 * @file
 * Determinism tests for sharded stepping (--sim-jobs).
 *
 * Network::setSimJobs(N) fans the read-only per-cycle passes of
 * step() across N workers over contiguous 64-aligned node shards
 * while every state commit stays sequential in ascending node order.
 * The contract is bitwise identity: the complete serialized network
 * state — clock, RNG streams, every VC and flit buffer, the message
 * store, statistics, detector and recovery state — must be equal at
 * every job count, on every scenario. These tests drive the
 * adversarial ones: saturation (all four staged phases busy), DWFG
 * probes in flight (a detector that keeps the sequential cycle-end
 * sweep while generation/routing/switch still shard), fault kills
 * and a reconfiguration epoch whose link crosses a shard boundary,
 * and a checkpoint written under jobs=8 and resumed under jobs=1
 * (the shard count is a runtime choice, not serialized state).
 *
 * The 16x16 torus (256 nodes) is the smallest shape that actually
 * shards: at jobs=8 the 64-aligned partition yields four shards with
 * boundaries at nodes 64, 128 and 192.
 */

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/serialize.hh"
#include "core/simulation.hh"
#include "sim/validate.hh"

namespace wormnet
{
namespace
{

SimulationConfig
shardedConfig()
{
    SimulationConfig cfg;
    cfg.radix = 16;
    cfg.dims = 2;
    cfg.vcs = 3;
    cfg.bufDepth = 4;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 64;
    cfg.seed = 17;
    return cfg;
}

std::vector<std::uint8_t>
snapshot(const Simulation &sim)
{
    Serializer s;
    sim.net().saveState(s);
    return s.bytes();
}

/** Run the scenario at @p jobs: warmup, measure, return the full
 *  serialized network state (covers stats bit-for-bit too). */
std::vector<std::uint8_t>
runAtJobs(SimulationConfig cfg, unsigned jobs, Cycle warmup,
          Cycle measure, std::uint64_t *delivered = nullptr)
{
    cfg.simJobs = jobs;
    Simulation sim(cfg);
    EXPECT_EQ(sim.net().simJobs(), jobs);
    sim.net().run(warmup);
    sim.net().startMeasurement();
    sim.net().run(measure);
    validateNetworkInvariants(sim.net());
    if (delivered)
        *delivered = sim.net().stats().delivered;
    return snapshot(sim);
}

TEST(ShardStep, SaturatedStatsBitwiseIdenticalAcrossSimJobs)
{
    // Past saturation every staged phase does real work each cycle:
    // generator draws on all 256 nodes, routing-cache warms, switch
    // decisions on most routers, detector sweeps.
    SimulationConfig cfg = shardedConfig();
    cfg.flitRate = 0.55;

    std::uint64_t delivered = 0;
    const auto j1 = runAtJobs(cfg, 1, 400, 800, &delivered);
    EXPECT_GT(delivered, 1000u) << "scenario must carry real traffic";
    EXPECT_EQ(j1, runAtJobs(cfg, 2, 400, 800));
    EXPECT_EQ(j1, runAtJobs(cfg, 8, 400, 800));
}

TEST(ShardStep, DwfgProbesInFlightInvariance)
{
    // DWFG is not cycleEndShardSafe(): its probe transport keeps the
    // sequential cycle-end sweep while generation, route warming and
    // switch decisions still shard. Saturated 2-VC traffic keeps
    // blocked heads (and therefore probes) in flight the whole run.
    SimulationConfig cfg = shardedConfig();
    cfg.vcs = 2;
    cfg.flitRate = 0.6;
    cfg.detector = "dwfg";
    cfg.seed = 29;

    const auto j1 = runAtJobs(cfg, 1, 300, 600);
    EXPECT_EQ(j1, runAtJobs(cfg, 2, 300, 600));
    EXPECT_EQ(j1, runAtJobs(cfg, 8, 300, 600));
}

TEST(ShardStep, FaultsAndReconfigEpochAcrossShardBoundary)
{
    // Node 55 lives in shard 0 and node 71 in shard 1 (jobs=8 puts
    // the first boundary at node 64): the removed/re-added link and
    // the stranded-worm kills it causes straddle the partition, and
    // a mid-run routing swap invalidates every shard's warmed
    // candidate cache at once.
    SimulationConfig cfg = shardedConfig();
    cfg.flitRate = 0.3;
    cfg.recovery = "regressive:16";
    cfg.faults = "link:40>41@200,router:130@600,rate:1e-5";
    cfg.faultRepair = 300;
    cfg.maxRetries = 4;
    cfg.reconfig = "link-:55>71@250,routing:duato@500,link+:55>71@750";
    cfg.seed = 23;

    std::uint64_t delivered = 0;
    const auto j1 = runAtJobs(cfg, 1, 500, 700, &delivered);
    EXPECT_GT(delivered, 100u);
    EXPECT_EQ(j1, runAtJobs(cfg, 2, 500, 700));
    EXPECT_EQ(j1, runAtJobs(cfg, 8, 500, 700));
}

TEST(ShardStep, CheckpointWrittenAtJobs8ResumesAtJobs1)
{
    // The shard count is a runtime execution choice: it is excluded
    // from the canonical config string, so a checkpoint written
    // while stepping on 8 workers must restore into a sequential
    // simulation — and both must then advance identically.
    SimulationConfig cfg = shardedConfig();
    cfg.flitRate = 0.55;

    SimulationConfig cfg8 = cfg;
    cfg8.simJobs = 8;
    Simulation a(cfg8);
    a.net().run(250);
    a.net().startMeasurement();
    a.net().run(250);
    ASSERT_GT(a.net().inFlight(), 0u)
        << "scenario must checkpoint with worms mid-flight";

    const std::string path =
        ::testing::TempDir() + "wormnet_shard_ckpt.bin";
    a.saveCheckpoint(path);

    SimulationConfig cfg1 = cfg;
    cfg1.simJobs = 1;
    Simulation b(cfg1);
    b.loadCheckpoint(path);
    std::remove(path.c_str());
    EXPECT_EQ(snapshot(a), snapshot(b))
        << "restored state diverges at the save point";

    a.net().run(500);
    b.net().run(500);
    EXPECT_EQ(a.net().now(), b.net().now());
    EXPECT_EQ(snapshot(a), snapshot(b))
        << "jobs=8 writer and jobs=1 resumer diverged";
}

TEST(ShardStep, CrossChecksCleanUnderSharding)
{
    // The brute-force active-set and SoA cross-checks recompute all
    // derived state from the authoritative structs at the end of
    // every cycle and panic on divergence — running saturated
    // sharded traffic under both flags is the assertion.
    ::setenv("WORMNET_CHECK_ACTIVE_SETS", "1", 1);
    ::setenv("WORMNET_CHECK_SOA", "1", 1);
    SimulationConfig cfg = shardedConfig();
    cfg.flitRate = 0.55;
    cfg.simJobs = 8;
    Simulation sim(cfg);
    sim.net().run(600);
    validateNetworkInvariants(sim.net());
    ::unsetenv("WORMNET_CHECK_ACTIVE_SETS");
    ::unsetenv("WORMNET_CHECK_SOA");
    EXPECT_GT(sim.net().stats().delivered, 500u);
}

} // namespace
} // namespace wormnet
