/**
 * @file
 * Online reconfiguration tests: plan grammar, bind-time validation,
 * live epoch application (kill/reroute/settle bookkeeping, admin
 * dead-state composition with faults, routing switches under load)
 * and the offline static analysis of plans.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/simulation.hh"
#include "detector_fixture.hh"
#include "sim/reconfig.hh"

namespace wormnet
{
namespace
{

TEST(ReconfigPlanParse, GrammarAndStableOrdering)
{
    const ReconfigPlan plan = ReconfigPlan::parse(
        "link-:0>1@100,router-:5@50,routing:duato@100,"
        "link+:0>1@200,router+:5@150");
    ASSERT_EQ(plan.edits.size(), 5u);

    // Stable-sorted by activation cycle; same-cycle items keep their
    // spec order (link- before routing at cycle 100).
    EXPECT_EQ(plan.edits[0].kind, ReconfigEdit::Kind::RouterDrain);
    EXPECT_EQ(plan.edits[0].node, 5u);
    EXPECT_EQ(plan.edits[0].at, 50u);

    EXPECT_EQ(plan.edits[1].kind, ReconfigEdit::Kind::LinkDown);
    EXPECT_EQ(plan.edits[1].node, 0u);
    EXPECT_EQ(plan.edits[1].peer, 1u);
    EXPECT_EQ(plan.edits[1].at, 100u);

    EXPECT_EQ(plan.edits[2].kind, ReconfigEdit::Kind::RoutingSwitch);
    EXPECT_EQ(plan.edits[2].routingSpec, "duato");
    EXPECT_EQ(plan.edits[2].at, 100u);

    EXPECT_EQ(plan.edits[3].kind, ReconfigEdit::Kind::RouterRestore);
    EXPECT_EQ(plan.edits[3].at, 150u);

    EXPECT_EQ(plan.edits[4].kind, ReconfigEdit::Kind::LinkUp);
    EXPECT_EQ(plan.edits[4].at, 200u);
}

TEST(ReconfigPlanParse, MalformedSpecsAreFatal)
{
    EXPECT_THROW(ReconfigPlan::parse(""), FatalError);
    EXPECT_THROW(ReconfigPlan::parse("link-:0>1"), FatalError);
    EXPECT_THROW(ReconfigPlan::parse("link-:0@100"), FatalError);
    EXPECT_THROW(ReconfigPlan::parse("nuke:3@100"), FatalError);
    EXPECT_THROW(ReconfigPlan::parse("router-:x@100"), FatalError);
    EXPECT_THROW(ReconfigPlan::parse("routing:@100"), FatalError);
}

TEST(ReconfigBind, RejectsBadPlans)
{
    // 0 and 5 are not neighbours on the 4x4 torus.
    {
        SimulationConfig cfg = torusConfig();
        cfg.reconfig = "link-:0>5@100";
        EXPECT_THROW(Simulation sim(cfg), FatalError);
    }
    // Restore without a matching removal.
    {
        SimulationConfig cfg = torusConfig();
        cfg.reconfig = "link+:0>1@100";
        EXPECT_THROW(Simulation sim(cfg), FatalError);
    }
    {
        SimulationConfig cfg = torusConfig();
        cfg.reconfig = "router+:3@100";
        EXPECT_THROW(Simulation sim(cfg), FatalError);
    }
    // Unknown routing function.
    {
        SimulationConfig cfg = torusConfig();
        cfg.reconfig = "routing:zigzag@100";
        EXPECT_THROW(Simulation sim(cfg), FatalError);
    }
    // Node out of range.
    {
        SimulationConfig cfg = torusConfig();
        cfg.reconfig = "router-:99@100";
        EXPECT_THROW(Simulation sim(cfg), FatalError);
    }
}

TEST(ReconfigLive, LinkRemoveAndRestoreRoundTrip)
{
    SimulationConfig cfg = torusConfig();
    cfg.reconfig = "link-:0>1@100,link+:0>1@400";
    Simulation sim(cfg);
    const ReconfigManager *mgr = sim.reconfigManager();
    ASSERT_NE(mgr, nullptr);

    sim.net().run(50);
    EXPECT_EQ(mgr->activeLinkRemovals(), 0u);
    EXPECT_EQ(mgr->epochs().size(), 0u);
    EXPECT_EQ(sim.net().deadOutMask(0), 0u);

    sim.net().run(100); // now = 150: removal epoch applied
    ASSERT_EQ(mgr->epochs().size(), 1u);
    EXPECT_EQ(mgr->activeLinkRemovals(), 1u);
    EXPECT_NE(sim.net().deadOutMask(0), 0u);
    EXPECT_EQ(mgr->epochs()[0].cycle, 100u);
    EXPECT_EQ(mgr->epochs()[0].edits, 1u);
    EXPECT_FALSE(mgr->planExhausted());

    sim.net().run(300); // now = 450: restore epoch applied
    ASSERT_EQ(mgr->epochs().size(), 2u);
    EXPECT_EQ(mgr->activeLinkRemovals(), 0u);
    EXPECT_EQ(sim.net().deadOutMask(0), 0u);
    EXPECT_TRUE(mgr->planExhausted());

    // Transients resolve: every killed worm reaches a terminal state
    // within the bounded-retry budget.
    sim.net().run(2000);
    EXPECT_TRUE(mgr->settled());
    for (const EpochRecord &e : mgr->epochs()) {
        EXPECT_TRUE(e.settled());
        EXPECT_EQ(e.killed, e.redelivered + e.abandonedOfKilled);
    }
    EXPECT_GT(sim.net().stats().delivered, 0u);
}

TEST(ReconfigLive, RouterDrainTakesIncidentLinksDown)
{
    SimulationConfig cfg = torusConfig();
    cfg.reconfig = "router-:5@100,router+:5@500";
    Simulation sim(cfg);
    const ReconfigManager *mgr = sim.reconfigManager();

    sim.net().run(150);
    EXPECT_TRUE(mgr->drained(5));
    EXPECT_EQ(mgr->activeDrains(), 1u);
    EXPECT_TRUE(sim.net().nodeOffline(5));
    // Every network output port of the drained router is dead, and
    // each neighbour's port toward it as well (4 neighbours on the
    // 2D torus: 1, 4, 6, 9).
    EXPECT_NE(sim.net().deadOutMask(5), 0u);
    for (NodeId nbr : {1u, 4u, 6u, 9u})
        EXPECT_NE(sim.net().deadOutMask(nbr), 0u)
            << "neighbour " << nbr << " keeps sending into router 5";

    sim.net().run(400); // past the restore
    EXPECT_FALSE(mgr->drained(5));
    EXPECT_EQ(mgr->activeDrains(), 0u);
    EXPECT_FALSE(sim.net().nodeOffline(5));
    EXPECT_EQ(sim.net().deadOutMask(5), 0u);
    for (NodeId nbr : {1u, 4u, 6u, 9u})
        EXPECT_EQ(sim.net().deadOutMask(nbr), 0u);

    sim.net().run(2000);
    EXPECT_TRUE(mgr->settled());
}

TEST(ReconfigLive, RoutingSwitchUnderLoad)
{
    SimulationConfig cfg = torusConfig();
    cfg.routing = "tfa";
    cfg.reconfig = "routing:duato@200,routing:dor@600";
    Simulation sim(cfg);
    const ReconfigManager *mgr = sim.reconfigManager();

    EXPECT_EQ(sim.net().routing().name(), "tfa");
    sim.net().run(300);
    EXPECT_EQ(sim.net().routing().name(), "duato");
    ASSERT_EQ(mgr->epochs().size(), 1u);
    EXPECT_EQ(mgr->epochs()[0].routingAfter, "duato");
    // A routing switch kills nothing: granted paths are honoured.
    EXPECT_EQ(mgr->epochs()[0].killed, 0u);

    const std::uint64_t delivered_before = sim.net().stats().delivered;
    sim.net().run(500);
    EXPECT_EQ(sim.net().routing().name(), "dor");
    ASSERT_EQ(mgr->epochs().size(), 2u);
    EXPECT_EQ(mgr->epochs()[1].routingAfter, "dor");
    // Traffic keeps flowing across both switches.
    EXPECT_GT(sim.net().stats().delivered, delivered_before);
    EXPECT_TRUE(mgr->settled());
}

TEST(ReconfigLive, SaturatedEpochKillsAndRedeliversWorms)
{
    // Near saturation a removed link is guaranteed to strand worms;
    // the epoch record must account for every one of them.
    SimulationConfig cfg = torusConfig(0.6);
    cfg.reconfig = "link-:0>1@400,link-:1>0@400,link+:0>1@1200,"
                   "link+:1>0@1200";
    Simulation sim(cfg);
    const ReconfigManager *mgr = sim.reconfigManager();

    sim.net().run(500);
    ASSERT_EQ(mgr->epochs().size(), 1u);
    const EpochRecord &removal = mgr->epochs()[0];
    EXPECT_EQ(removal.edits, 2u);
    EXPECT_GT(removal.killed + removal.rerouted, 0u)
        << "removing a saturated link disturbed no worm at all";

    sim.net().run(3000);
    ASSERT_EQ(mgr->epochs().size(), 2u);
    EXPECT_TRUE(mgr->settled());
    EXPECT_EQ(mgr->epochs()[0].killed,
              mgr->epochs()[0].redelivered +
                  mgr->epochs()[0].abandonedOfKilled);
    EXPECT_LE(mgr->epochs()[0].settleCycle, sim.net().now());
    // No worm outlives the oracle as a phantom deadlock.
    EXPECT_TRUE(sim.net().deadlockedNow().empty());
}

TEST(ReconfigLive, AdminAndFaultCausesCompose)
{
    // The same link is both faulted (repairable) and admin-removed;
    // it must stay dead until *both* causes clear.
    SimulationConfig cfg = torusConfig();
    cfg.faults = "link:0>1@100";
    cfg.faultRepair = 300; // fault heals at ~400
    cfg.reconfig = "link-:0>1@200,link+:0>1@800";
    Simulation sim(cfg);
    const ReconfigManager *mgr = sim.reconfigManager();

    sim.net().run(150); // fault only
    EXPECT_NE(sim.net().deadOutMask(0), 0u);
    EXPECT_EQ(mgr->activeLinkRemovals(), 0u);

    sim.net().run(350); // now = 500: fault healed, admin still down
    EXPECT_GE(sim.net().stats().faultsRepaired, 1u);
    EXPECT_EQ(mgr->activeLinkRemovals(), 1u);
    EXPECT_NE(sim.net().deadOutMask(0), 0u)
        << "repair resurrected an admin-removed link";

    sim.net().run(400); // now = 900: admin restore clears last cause
    EXPECT_EQ(mgr->activeLinkRemovals(), 0u);
    EXPECT_EQ(sim.net().deadOutMask(0), 0u);

    sim.net().run(2000);
    EXPECT_TRUE(mgr->settled());
}

TEST(ReconfigStatic, PlanAnalysisTracksEpochs)
{
    SimulationConfig cfg = torusConfig();
    cfg.routing = "dor"; // acyclic on the dateline torus
    Simulation sim(cfg);

    const ReconfigPlan plan = ReconfigPlan::parse(
        "link-:0>1@100,routing:tfa@300,link+:0>1@500");
    const std::vector<EpochStaticResult> results = analyzePlanStatic(
        plan, sim.net().topology(), sim.net().routerParams(), "dor");

    // Initial snapshot + one entry per epoch.
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].cycle, 0u);
    EXPECT_EQ(results[0].edits, 0u);
    EXPECT_EQ(results[0].routing, "dor");

    EXPECT_EQ(results[1].cycle, 100u);
    EXPECT_EQ(results[1].routing, "dor");

    EXPECT_EQ(results[2].cycle, 300u);
    EXPECT_EQ(results[2].routing, "tfa");
    // Unrestricted fully adaptive routing on a torus is cyclic.
    EXPECT_EQ(results[2].report.verdict,
              CdgVerdict::CyclicDependencies);

    EXPECT_EQ(results[3].cycle, 500u);
    EXPECT_EQ(results[3].routing, "tfa");
}

TEST(ReconfigStatic, OfflineAnalysisRejectsBadPlans)
{
    SimulationConfig cfg = torusConfig();
    Simulation sim(cfg);
    const Topology &topo = sim.net().topology();
    const RouterParams &params = sim.net().routerParams();

    EXPECT_THROW(analyzePlanStatic(ReconfigPlan::parse("link-:0>5@1"),
                                   topo, params, "tfa"),
                 FatalError);
    EXPECT_THROW(analyzePlanStatic(ReconfigPlan::parse("link+:0>1@1"),
                                   topo, params, "tfa"),
                 FatalError);
    EXPECT_THROW(
        analyzePlanStatic(ReconfigPlan::parse("routing:zigzag@1"),
                          topo, params, "tfa"),
        FatalError);
}

TEST(ReconfigLive, CrossCheckRecordsStaticVerdicts)
{
    SimulationConfig cfg = torusConfig();
    cfg.reconfig = "link-:0>1@100,link+:0>1@300";
    Simulation sim(cfg);
    sim.net().run(400);

    const ReconfigManager *mgr = sim.reconfigManager();
    ASSERT_EQ(mgr->epochs().size(), 2u);
    for (const EpochRecord &e : mgr->epochs())
        EXPECT_FALSE(e.staticVerdict.empty());

    // Cross-checking off: no verdict is recorded.
    SimulationConfig off = cfg;
    off.reconfigCheck = false;
    Simulation sim2(off);
    sim2.net().run(400);
    for (const EpochRecord &e : sim2.reconfigManager()->epochs())
        EXPECT_TRUE(e.staticVerdict.empty());
}

} // namespace
} // namespace wormnet
