/**
 * @file
 * Tests for the parallel sweep engine: thread-pool semantics
 * (exception propagation, nested submission, shutdown with pending
 * tasks), parallelFor's serial-equivalence contract, the SplitMix64
 * seed derivation, and the headline guarantee that a TableSpec run
 * with jobs 1, 2 and 8 produces byte-identical TableResults.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/experiment.hh"

namespace wormnet
{
namespace
{

// ---------------------------------------------------------------
// ThreadPool semantics.
// ---------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitPropagatesTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is cleared once observed; the pool stays usable.
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, NestedSubmitCompletes)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&, i] {
            ran.fetch_add(1);
            // Tasks spawned from inside a task go to the worker's
            // private deque and must all execute, even two levels
            // deep.
            for (int j = 0; j < 4; ++j) {
                pool.submit([&] {
                    ran.fetch_add(1);
                    pool.submit([&] { ran.fetch_add(1); });
                });
            }
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 8 + 8 * 4 + 8 * 4);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlockOnTinyQueue)
{
    // Queue capacity 1 with tasks that fan out: only safe because
    // nested submissions bypass the bounded external queue.
    ThreadPool pool(2, /*queue_capacity=*/1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&] {
            for (int j = 0; j < 16; ++j)
                pool.submit([&] { ran.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 4 * 16);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        // One slow worker so most tasks are still queued when the
        // destructor runs; destruction must execute every one.
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ran.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(ran.load(), 50);
}

// ---------------------------------------------------------------
// parallelFor contract.
// ---------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (const unsigned jobs : {1u, 2u, 5u, 8u}) {
        std::vector<int> hits(257, 0);
        parallelFor(hits.size(), jobs,
                    [&](std::size_t i) { ++hits[i]; });
        for (const int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(ParallelFor, ZeroAndTinyRangesRunInline)
{
    int ran = 0;
    parallelFor(0, 8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    parallelFor(1, 8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, RethrowsLowestFailingIndex)
{
    // Indices 3 and 7 fail; every job count must surface index 3's
    // exception, the one a serial loop would have thrown first.
    for (const unsigned jobs : {1u, 2u, 8u}) {
        try {
            parallelFor(16, jobs, [&](std::size_t i) {
                if (i == 3)
                    throw std::out_of_range("index 3");
                if (i == 7)
                    throw std::runtime_error("index 7");
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::out_of_range &e) {
            EXPECT_STREQ(e.what(), "index 3");
        }
    }
}

TEST(ParallelFor, ExceptionDoesNotLoseCompletedWork)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(32, 4,
                             [&](std::size_t i) {
                                 if (i == 0)
                                     throw std::runtime_error("x");
                                 ran.fetch_add(1);
                             }),
                 std::runtime_error);
    // Indices already picked up may finish; none runs twice.
    EXPECT_LE(ran.load(), 31);
}

// ---------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------

TEST(SeedDerivation, AdjacentBaseSeedsAndCellsNeverOverlap)
{
    // The old scheme (seed + replication) made cell seeds collide
    // whenever base seeds were adjacent; the SplitMix64 derivation
    // must give every (base, cell, replication) a distinct seed.
    std::set<std::uint64_t> seeds;
    std::size_t produced = 0;
    for (std::uint64_t base = 1; base <= 4; ++base) {
        for (std::uint64_t cell = 0; cell < 8; ++cell) {
            for (std::uint64_t rep = 0; rep < 16; ++rep) {
                seeds.insert(deriveSeed(base, cell, rep));
                ++produced;
            }
        }
    }
    EXPECT_EQ(seeds.size(), produced);
}

TEST(SeedDerivation, IsDeterministic)
{
    EXPECT_EQ(deriveSeed(1, 2, 3), deriveSeed(1, 2, 3));
    EXPECT_NE(deriveSeed(1, 2, 3), deriveSeed(2, 2, 3));
    EXPECT_NE(deriveSeed(1, 2, 3), deriveSeed(1, 3, 3));
    EXPECT_NE(deriveSeed(1, 2, 3), deriveSeed(1, 2, 4));
}

// ---------------------------------------------------------------
// Determinism of the experiment harness across job counts.
// ---------------------------------------------------------------

void
expectCellsIdentical(const CellResult &a, const CellResult &b)
{
    // Bitwise comparison: the parallel engine promises results
    // identical to the serial order, not merely close.
    EXPECT_EQ(std::memcmp(&a.detectionRate, &b.detectionRate,
                          sizeof a.detectionRate),
              0);
    EXPECT_EQ(std::memcmp(&a.detectionRateStd, &b.detectionRateStd,
                          sizeof a.detectionRateStd),
              0);
    EXPECT_EQ(a.replications, b.replications);
    EXPECT_EQ(a.sawTrueDeadlock, b.sawTrueDeadlock);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.detectedMessages, b.detectedMessages);
    EXPECT_EQ(std::memcmp(&a.acceptedFlitRate, &b.acceptedFlitRate,
                          sizeof a.acceptedFlitRate),
              0);
    EXPECT_EQ(std::memcmp(&a.generatedFlitRate, &b.generatedFlitRate,
                          sizeof a.generatedFlitRate),
              0);
    EXPECT_EQ(std::memcmp(&a.avgLatency, &b.avgLatency,
                          sizeof a.avgLatency),
              0);
}

TableSpec
smallSpec()
{
    TableSpec spec;
    spec.title = "determinism";
    spec.base.radix = 4;
    spec.base.dims = 2;
    spec.base.detector = "ndm:32";
    spec.base.seed = 11;
    spec.detectorTemplate = "ndm:%T";
    spec.thresholds = {8, 64};
    spec.sizeClasses = {"s", "l"};
    spec.rates = {0.15, 0.35};
    spec.rateLabels = {"low", "high"};
    spec.warmup = 200;
    spec.measure = 600;
    spec.replications = 3;
    return spec;
}

TEST(ParallelDeterminism, TableIdenticalAcrossJobCounts)
{
    const TableSpec spec = smallSpec();
    const ExperimentRunner serial({}, 1);
    const TableResult reference = serial.runTable(spec);

    for (const unsigned jobs : {2u, 8u}) {
        const ExperimentRunner parallel({}, jobs);
        const TableResult result = parallel.runTable(spec);
        ASSERT_EQ(result.cells.size(), reference.cells.size());
        for (std::size_t r = 0; r < reference.cells.size(); ++r) {
            ASSERT_EQ(result.cells[r].size(),
                      reference.cells[r].size());
            for (std::size_t s = 0; s < reference.cells[r].size();
                 ++s) {
                ASSERT_EQ(result.cells[r][s].size(),
                          reference.cells[r][s].size());
                for (std::size_t t = 0;
                     t < reference.cells[r][s].size(); ++t) {
                    expectCellsIdentical(result.cells[r][s][t],
                                         reference.cells[r][s][t]);
                }
            }
        }
        // The star annotations derive from sawTrueDeadlock, so the
        // formatted tables must render identically too.
        EXPECT_EQ(ExperimentRunner::formatTable(result).render(),
                  ExperimentRunner::formatTable(reference).render());
    }
}

TEST(ParallelDeterminism, ReplicatedCellIdenticalAcrossJobCounts)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.detector = "ndm:32";
    cfg.flitRate = 0.3;
    cfg.seed = 19;

    const ExperimentRunner serial({}, 1);
    const CellResult reference =
        serial.runCellReplicated(cfg, 300, 900, 4, /*cell_index=*/5);
    for (const unsigned jobs : {2u, 8u}) {
        const ExperimentRunner parallel({}, jobs);
        const CellResult cell = parallel.runCellReplicated(
            cfg, 300, 900, 4, /*cell_index=*/5);
        expectCellsIdentical(cell, reference);
    }
}

TEST(ParallelDeterminism, SaturationSearchIdenticalAcrossJobCounts)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.detector = "ndm:32";
    cfg.seed = 3;

    const ExperimentRunner serial({}, 1);
    const double reference =
        serial.findSaturationRate(cfg, 0.1, 2.0, 0.05, 300, 900, 2);
    for (const unsigned jobs : {2u, 8u}) {
        const ExperimentRunner parallel({}, jobs);
        const double sat = parallel.findSaturationRate(
            cfg, 0.1, 2.0, 0.05, 300, 900, 2);
        EXPECT_EQ(sat, reference);
    }
}

TEST(ParallelDeterminism, ProgressFiresOncePerCellUnderParallelism)
{
    std::atomic<unsigned> calls{0};
    const ExperimentRunner runner(
        [&](const std::string &) { calls.fetch_add(1); }, 4);
    TableSpec spec = smallSpec();
    spec.replications = 2;
    runner.runTable(spec);
    // 2 rates x 2 sizes x 2 thresholds.
    EXPECT_EQ(calls.load(), 8u);
}

TEST(ParallelDeterminism, TableErrorsMatchSerialBehaviour)
{
    TableSpec spec = smallSpec();
    spec.detectorTemplate = "ndm:32"; // no %T
    for (const unsigned jobs : {1u, 4u}) {
        const ExperimentRunner runner({}, jobs);
        EXPECT_THROW(runner.runTable(spec), FatalError);
    }
}

} // namespace
} // namespace wormnet
