/**
 * @file
 * Unit tests for the traffic library: destination patterns, length
 * distributions and the per-node generation process.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/log.hh"
#include "topology/mixed_torus.hh"
#include "topology/torus.hh"
#include "traffic/generator.hh"
#include "traffic/length.hh"
#include "traffic/pattern.hh"

namespace wormnet
{
namespace
{

TEST(UniformPattern, NeverSelf)
{
    const KAryNCube topo(4, 2);
    UniformPattern p(topo);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const NodeId d = p.destination(5, rng);
        EXPECT_NE(d, 5u);
        EXPECT_LT(d, topo.numNodes());
    }
}

TEST(UniformPattern, CoversAllOtherNodes)
{
    const KAryNCube topo(4, 1);
    UniformPattern p(topo);
    Rng rng(2);
    std::map<NodeId, int> hits;
    for (int i = 0; i < 3000; ++i)
        ++hits[p.destination(0, rng)];
    EXPECT_EQ(hits.size(), 3u);
    for (const auto &kv : hits)
        EXPECT_NEAR(kv.second, 1000, 150);
}

TEST(LocalityPattern, WithinRadius)
{
    const KAryNCube topo(8, 2);
    LocalityPattern p(topo, 3);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const NodeId d = p.destination(10, rng);
        EXPECT_NE(d, 10u);
        EXPECT_LE(topo.distance(10, d), 3u);
    }
}

TEST(LocalityPattern, RadiusOneIsNearestNeighbours)
{
    const KAryNCube topo(8, 2);
    LocalityPattern p(topo, 1);
    Rng rng(4);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(topo.distance(0, p.destination(0, rng)), 1u);
}

TEST(LocalityPattern, TooLargeRadiusIsFatal)
{
    const KAryNCube topo(4, 2);
    EXPECT_THROW(LocalityPattern(topo, 2), FatalError);
    EXPECT_THROW(LocalityPattern(topo, 0), FatalError);
}

TEST(BitReversal, KnownValues)
{
    const KAryNCube topo(8, 2); // 64 nodes, 6 bits
    BitReversalPattern p(topo);
    Rng rng(5);
    EXPECT_EQ(p.destination(0b000001, rng), 0b100000u);
    EXPECT_EQ(p.destination(0b100000, rng), 0b000001u);
    EXPECT_EQ(p.destination(0b101101, rng), 0b101101u); // palindrome
    EXPECT_EQ(p.destination(0, rng), 0u);
}

TEST(BitReversal, IsInvolution)
{
    const KAryNCube topo(8, 3); // 512 nodes
    BitReversalPattern p(topo);
    Rng rng(6);
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        EXPECT_EQ(p.destination(p.destination(n, rng), rng), n);
}

TEST(PerfectShuffle, RotatesLeft)
{
    const KAryNCube topo(8, 2); // 6 bits
    PerfectShufflePattern p(topo);
    Rng rng(7);
    EXPECT_EQ(p.destination(0b100000, rng), 0b000001u);
    EXPECT_EQ(p.destination(0b000001, rng), 0b000010u);
    EXPECT_EQ(p.destination(0b110101, rng), 0b101011u);
}

TEST(PerfectShuffle, SixApplicationsIdentity)
{
    const KAryNCube topo(8, 2); // 6 bits -> period divides 6
    PerfectShufflePattern p(topo);
    Rng rng(8);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        NodeId v = n;
        for (int i = 0; i < 6; ++i)
            v = p.destination(v, rng);
        EXPECT_EQ(v, n);
    }
}

TEST(Butterfly, SwapsEndBits)
{
    const KAryNCube topo(8, 2); // 6 bits
    ButterflyPattern p(topo);
    Rng rng(9);
    EXPECT_EQ(p.destination(0b100000, rng), 0b000001u);
    EXPECT_EQ(p.destination(0b000001, rng), 0b100000u);
    EXPECT_EQ(p.destination(0b100001, rng), 0b100001u);
    EXPECT_EQ(p.destination(0b010110, rng), 0b010110u);
}

TEST(Transpose, SwapsHalves)
{
    const KAryNCube topo(4, 2); // 16 nodes, 4 bits
    TransposePattern p(topo);
    Rng rng(10);
    EXPECT_EQ(p.destination(0b0011, rng), 0b1100u);
    EXPECT_EQ(p.destination(0b0110, rng), 0b1001u);
}

TEST(BitPatterns, RequirePowerOfTwo)
{
    const KAryNCube topo(3, 2); // 9 nodes
    EXPECT_THROW(BitReversalPattern{topo}, FatalError);
    EXPECT_THROW(PerfectShufflePattern{topo}, FatalError);
}

TEST(HotSpot, FractionApproximatelyRespected)
{
    const KAryNCube topo(8, 2);
    HotSpotPattern p(std::make_unique<UniformPattern>(topo), 20, 0.05);
    Rng rng(11);
    int hot = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        hot += p.destination(0, rng) == 20;
    // 5% hot-spot traffic plus the uniform share (1/63).
    const double expected = 0.05 + (1.0 - 0.05) / 63.0;
    EXPECT_NEAR(hot / double(n), expected, 0.01);
}

TEST(HotSpot, HotNodeItselfSendsElsewhere)
{
    const KAryNCube topo(4, 2);
    HotSpotPattern p(std::make_unique<UniformPattern>(topo), 7, 0.05);
    Rng rng(12);
    for (int i = 0; i < 500; ++i)
        EXPECT_NE(p.destination(7, rng), 7u);
}

TEST(Tornado, HalfWayShift)
{
    const KAryNCube topo(8, 2);
    TornadoPattern p(topo);
    Rng rng(13);
    // (k-1)/2 = 3 hops in each dimension.
    const NodeId d = p.destination(0, rng);
    EXPECT_EQ(topo.coordinate(d, 0), 3u);
    EXPECT_EQ(topo.coordinate(d, 1), 3u);
}

TEST(LocalityPattern, MixedRadixGuardsSmallestDimension)
{
    // Radius must fit the *smallest* dimension of a mixed torus.
    const MixedRadixTorus topo({8, 4});
    EXPECT_NO_THROW(LocalityPattern(topo, 1));
    EXPECT_THROW(LocalityPattern(topo, 2), FatalError);
}

TEST(Tornado, MixedRadixShiftsPerDimension)
{
    const MixedRadixTorus topo({8, 4});
    TornadoPattern p(topo);
    Rng rng(24);
    const NodeId d = p.destination(0, rng);
    EXPECT_EQ(topo.coordinate(d, 0), (8u - 1) / 2);
    EXPECT_EQ(topo.coordinate(d, 1), (4u - 1) / 2);
}

TEST(PatternFactory, BuildsEveryKind)
{
    const KAryNCube topo(8, 2);
    for (const char *spec :
         {"uniform", "locality", "locality:2", "bitrev", "shuffle",
          "butterfly", "transpose", "tornado", "hotspot",
          "hotspot:0.1", "hotspot:0.1:5"}) {
        const auto p = makePattern(spec, topo);
        ASSERT_NE(p, nullptr) << spec;
        Rng rng(14);
        const NodeId d = p->destination(1, rng);
        EXPECT_LT(d, topo.numNodes()) << spec;
    }
}

TEST(PatternFactory, UnknownIsFatal)
{
    const KAryNCube topo(4, 2);
    EXPECT_THROW(makePattern("nonsense", topo), FatalError);
    EXPECT_THROW(makePattern("", topo), FatalError);
}

TEST(FixedLength, AlwaysSame)
{
    FixedLength len(16);
    Rng rng(15);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(len.draw(rng), 16u);
    EXPECT_DOUBLE_EQ(len.mean(), 16.0);
    EXPECT_EQ(len.maxLength(), 16u);
}

TEST(MixLength, RespectsWeights)
{
    MixLength len({{16, 0.6}, {64, 0.4}});
    Rng rng(16);
    int short_count = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const unsigned v = len.draw(rng);
        ASSERT_TRUE(v == 16 || v == 64);
        short_count += v == 16;
    }
    EXPECT_NEAR(short_count / double(n), 0.6, 0.02);
    EXPECT_DOUBLE_EQ(len.mean(), 0.6 * 16 + 0.4 * 64);
    EXPECT_EQ(len.maxLength(), 64u);
}

TEST(MixLength, NormalisesWeights)
{
    MixLength len({{8, 3.0}, {32, 1.0}});
    EXPECT_DOUBLE_EQ(len.mean(), 0.75 * 8 + 0.25 * 32);
}

TEST(UniformLength, StaysInRange)
{
    UniformLength len(4, 12);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const unsigned v = len.draw(rng);
        EXPECT_GE(v, 4u);
        EXPECT_LE(v, 12u);
    }
    EXPECT_DOUBLE_EQ(len.mean(), 8.0);
}

TEST(LengthFactory, PaperClasses)
{
    Rng rng(18);
    EXPECT_EQ(makeLengthDistribution("s")->draw(rng), 16u);
    EXPECT_EQ(makeLengthDistribution("l")->draw(rng), 64u);
    EXPECT_EQ(makeLengthDistribution("L")->draw(rng), 256u);
    const auto sl = makeLengthDistribution("sl");
    EXPECT_DOUBLE_EQ(sl->mean(), 0.6 * 16 + 0.4 * 64);
    EXPECT_EQ(makeLengthDistribution("48")->draw(rng), 48u);
    const auto mix = makeLengthDistribution("mix:8x1,24x1");
    EXPECT_DOUBLE_EQ(mix->mean(), 16.0);
    const auto uni = makeLengthDistribution("uniform:2:6");
    EXPECT_DOUBLE_EQ(uni->mean(), 4.0);
}

TEST(LengthFactory, BadSpecsFatal)
{
    EXPECT_THROW(makeLengthDistribution("xyz"), FatalError);
    EXPECT_THROW(makeLengthDistribution("0"), FatalError);
    EXPECT_THROW(makeLengthDistribution("mix:16"), FatalError);
    EXPECT_THROW(makeLengthDistribution("uniform:9"), FatalError);
}

TEST(Generator, RateMatchesRequested)
{
    const KAryNCube topo(4, 2);
    UniformPattern pattern(topo);
    FixedLength lengths(16);
    NodeGenerator gen(0, pattern, lengths, 0.32, Rng(19));
    std::uint64_t flits = 0;
    const int cycles = 50000;
    for (int i = 0; i < cycles; ++i) {
        if (const auto m = gen.tick())
            flits += m->length;
    }
    EXPECT_NEAR(flits / double(cycles), 0.32, 0.02);
}

TEST(Generator, ZeroRateGeneratesNothing)
{
    const KAryNCube topo(4, 2);
    UniformPattern pattern(topo);
    FixedLength lengths(16);
    NodeGenerator gen(0, pattern, lengths, 0.0, Rng(20));
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(gen.tick().has_value());
}

TEST(Generator, ExcessiveRateIsFatal)
{
    const KAryNCube topo(4, 2);
    UniformPattern pattern(topo);
    FixedLength lengths(4);
    EXPECT_THROW(NodeGenerator(0, pattern, lengths, 5.0, Rng(21)),
                 FatalError);
}

TEST(Generator, SelfDropsCountedForSelfMappingPatterns)
{
    const KAryNCube topo(8, 2);
    BitReversalPattern pattern(topo); // id 0 maps to itself
    FixedLength lengths(16);
    NodeGenerator gen(0, pattern, lengths, 0.5, Rng(22));
    for (int i = 0; i < 2000; ++i)
        EXPECT_FALSE(gen.tick().has_value());
    EXPECT_GT(gen.selfDrops(), 0u);
}

TEST(Generator, SetFlitRateTakesEffect)
{
    const KAryNCube topo(4, 2);
    UniformPattern pattern(topo);
    FixedLength lengths(16);
    NodeGenerator gen(0, pattern, lengths, 0.0, Rng(23));
    gen.setFlitRate(0.16);
    int msgs = 0;
    for (int i = 0; i < 20000; ++i)
        msgs += gen.tick().has_value();
    EXPECT_NEAR(msgs / 20000.0, 0.01, 0.003);
}

} // namespace
} // namespace wormnet
