/**
 * @file
 * Integration tests for the Network kernel: conservation invariants,
 * determinism, measurement windows, injection limitation and
 * multi-message behaviour under sustained load.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/simulation.hh"

namespace wormnet
{
namespace
{

SimulationConfig
smallConfig()
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.15;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.seed = 11;
    return cfg;
}

TEST(Network, ConservationAfterDrain)
{
    Simulation sim(smallConfig());
    sim.net().run(4000);
    sim.net().setFlitRate(0.0);
    sim.net().run(4000);

    const SimStats &s = sim.net().stats();
    EXPECT_GT(s.generated, 200u);
    // Once drained, every injected message was delivered.
    EXPECT_EQ(s.delivered, s.injected);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_EQ(sim.net().totalQueued(), 0u);
    // And everything generated was eventually injected.
    EXPECT_EQ(s.injected, s.generated);
}

TEST(Network, FlitConservation)
{
    Simulation sim(smallConfig());
    sim.net().run(3000);
    sim.net().setFlitRate(0.0);
    sim.net().run(3000);
    const SimStats &s = sim.net().stats();
    // Every delivered message contributed exactly `length` flits.
    std::uint64_t expected = 0;
    for (MsgId id = 0; id < sim.net().messages().size(); ++id) {
        const Message &m = sim.net().messages().get(id);
        if (m.status == MsgStatus::Delivered && !m.recovered)
            expected += m.length;
    }
    EXPECT_EQ(s.flitsDelivered, expected);
}

TEST(Network, DeterministicGivenSeed)
{
    SimSummary a, b;
    {
        Simulation sim(smallConfig());
        a = sim.warmupAndMeasure(1000, 3000);
    }
    {
        Simulation sim(smallConfig());
        b = sim.warmupAndMeasure(1000, 3000);
    }
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.detectedMessages, b.detectedMessages);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.acceptedFlitRate, b.acceptedFlitRate);
}

TEST(Network, DifferentSeedsDiffer)
{
    SimulationConfig cfg = smallConfig();
    Simulation sim_a(cfg);
    cfg.seed = 12;
    Simulation sim_b(cfg);
    const SimSummary a = sim_a.warmupAndMeasure(1000, 3000);
    const SimSummary b = sim_b.warmupAndMeasure(1000, 3000);
    EXPECT_NE(a.avgLatency, b.avgLatency);
}

TEST(Network, MeasurementWindowResets)
{
    Simulation sim(smallConfig());
    sim.net().run(2000);
    const std::uint64_t before = sim.net().stats().delivered;
    EXPECT_GT(before, 0u);
    EXPECT_EQ(sim.net().stats().wDelivered, 0u); // not measuring yet
    sim.net().startMeasurement();
    EXPECT_EQ(sim.net().stats().wDelivered, 0u);
    sim.net().run(2000);
    EXPECT_GT(sim.net().stats().wDelivered, 0u);
    EXPECT_LT(sim.net().stats().wDelivered,
              sim.net().stats().delivered);
}

TEST(Network, AcceptedMatchesOfferedBelowSaturation)
{
    SimulationConfig cfg = smallConfig();
    cfg.flitRate = 0.2;
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(2000, 6000);
    EXPECT_NEAR(s.acceptedFlitRate, 0.2, 0.03);
}

TEST(Network, LatencyAboveZeroLoadBound)
{
    // At near-zero load, latency approaches the no-contention bound:
    // ~3 cycles/hop plus serialisation (length flits).
    SimulationConfig cfg = smallConfig();
    cfg.flitRate = 0.01;
    cfg.lengths = "16";
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(1000, 8000);
    EXPECT_GT(s.avgLatency, 16.0);
    EXPECT_LT(s.avgLatency, 50.0);
}

TEST(Network, LatencyGrowsWithLoad)
{
    SimulationConfig lo = smallConfig(), hi = smallConfig();
    lo.flitRate = 0.05;
    hi.flitRate = 0.5;
    Simulation sim_lo(lo), sim_hi(hi);
    const SimSummary a = sim_lo.warmupAndMeasure(1500, 4000);
    const SimSummary b = sim_hi.warmupAndMeasure(1500, 4000);
    EXPECT_GT(b.avgLatency, a.avgLatency);
}

TEST(Network, InjectionLimitThrottlesUnderOverload)
{
    // With the limiter, accepted throughput beyond saturation stays
    // near the peak instead of collapsing.
    SimulationConfig with = smallConfig(), without = smallConfig();
    with.flitRate = 1.2;
    without.flitRate = 1.2;
    without.injectionLimit = false;
    Simulation sim_with(with), sim_without(without);
    const SimSummary a = sim_with.warmupAndMeasure(2000, 6000);
    const SimSummary b = sim_without.warmupAndMeasure(2000, 6000);
    EXPECT_GT(a.acceptedFlitRate, b.acceptedFlitRate * 0.95);
    // And the limited network holds messages at the sources.
    EXPECT_GT(sim_with.net().totalQueued(), 0u);
}

TEST(Network, SourceQueueCapDropsExcess)
{
    SimulationConfig cfg = smallConfig();
    cfg.flitRate = 1.5;
    cfg.maxSourceQueue = 8;
    Simulation sim(cfg);
    sim.net().run(4000);
    for (NodeId n = 0; n < sim.net().numNodes(); ++n)
        EXPECT_LE(sim.net().sourceQueueLength(n), 8u);
}

TEST(Network, MixedLengthsDeliver)
{
    SimulationConfig cfg = smallConfig();
    cfg.lengths = "sl";
    cfg.flitRate = 0.3;
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(1500, 5000);
    EXPECT_GT(s.delivered, 300u);
}

TEST(Network, HotspotDeliversWithMultiPortEjection)
{
    SimulationConfig cfg = smallConfig();
    cfg.pattern = "hotspot:0.2:0";
    cfg.flitRate = 0.2;
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(2000, 5000);
    EXPECT_GT(s.delivered, 200u);
    EXPECT_GT(s.acceptedFlitRate, 0.1);
}

TEST(Network, NoDetectionsAtLowLoad)
{
    SimulationConfig cfg = smallConfig();
    cfg.flitRate = 0.05;
    cfg.detector = "ndm:32";
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(2000, 8000);
    EXPECT_EQ(s.detectedMessages, 0u);
}

TEST(Network, DetectorConfigRoundTrip)
{
    // The config string reaches the detector (name check only).
    SimulationConfig cfg = smallConfig();
    cfg.detector = "pdm:64";
    Simulation sim(cfg);
    EXPECT_NO_THROW(sim.net().run(100));
}

TEST(Network, FromConfigMapping)
{
    Config cli = Config::parseString(
        "radix=4,dims=3,vcs=2,rate=0.1,pattern=bitrev,lengths=l,"
        "detector=pdm:16,recovery=regressive,seed=99,"
        "injection-limit=false,selection=firstfit");
    const SimulationConfig cfg = SimulationConfig::fromConfig(cli);
    EXPECT_EQ(cfg.radix, 4u);
    EXPECT_EQ(cfg.dims, 3u);
    EXPECT_EQ(cfg.vcs, 2u);
    EXPECT_DOUBLE_EQ(cfg.flitRate, 0.1);
    EXPECT_EQ(cfg.pattern, "bitrev");
    EXPECT_EQ(cfg.lengths, "l");
    EXPECT_EQ(cfg.detector, "pdm:16");
    EXPECT_EQ(cfg.recovery, "regressive");
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_FALSE(cfg.injectionLimit);
    EXPECT_EQ(cfg.selection, "firstfit");
    EXPECT_NO_THROW(Simulation{cfg});
}

TEST(Network, InvalidConfigIsFatal)
{
    SimulationConfig cfg = smallConfig();
    cfg.topology = "hypercube-of-cliques";
    EXPECT_THROW(Simulation{cfg}, FatalError);

    cfg = smallConfig();
    cfg.selection = "psychic";
    EXPECT_THROW(Simulation{cfg}, FatalError);

    cfg = smallConfig();
    cfg.injPorts = 0;
    EXPECT_THROW(Simulation{cfg}, FatalError);
}

TEST(Network, MeshTopologyEndToEnd)
{
    SimulationConfig cfg = smallConfig();
    cfg.topology = "mesh";
    cfg.routing = "dor";
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.flitRate = 0.08;
    Simulation sim(cfg);
    sim.net().run(3000);
    sim.net().setFlitRate(0.0);
    sim.net().run(3000);
    EXPECT_EQ(sim.net().stats().delivered,
              sim.net().stats().injected);
    EXPECT_GT(sim.net().stats().delivered, 100u);
}

TEST(Network, ChannelUtilizationTracksLoad)
{
    SimulationConfig cfg = smallConfig();
    cfg.flitRate = 0.3;
    Simulation sim(cfg);
    sim.warmupAndMeasure(1000, 4000);
    const RunningStat util = sim.net().utilizationSummary();
    // 16 channels per 4x4 torus... utilisation bounded by 1 and
    // roughly rate * avg_distance / channels-per-node.
    EXPECT_GT(util.mean(), 0.05);
    EXPECT_LE(util.max(), 1.0);
    // Uniform traffic on a symmetric torus: no channel starves.
    EXPECT_GT(util.min(), 0.01);
}

TEST(Network, ChannelUtilizationZeroWhenIdle)
{
    SimulationConfig cfg = smallConfig();
    cfg.flitRate = 0.0;
    Simulation sim(cfg);
    sim.warmupAndMeasure(100, 500);
    EXPECT_DOUBLE_EQ(sim.net().utilizationSummary().mean(), 0.0);
}

TEST(Network, HotspotSkewsUtilization)
{
    SimulationConfig cfg = smallConfig();
    cfg.pattern = "hotspot:0.3:0";
    cfg.flitRate = 0.15;
    Simulation sim(cfg);
    sim.warmupAndMeasure(1000, 4000);
    const RunningStat util = sim.net().utilizationSummary();
    // Channels near the hot node run far above the network mean.
    EXPECT_GT(util.max(), 2.0 * util.mean());
}

TEST(Network, MixedRadixTorusEndToEnd)
{
    SimulationConfig cfg = smallConfig();
    cfg.radices = "8x4";
    cfg.flitRate = 0.2;
    Simulation sim(cfg);
    EXPECT_EQ(sim.topology().numNodes(), 32u);
    sim.net().run(3000);
    sim.net().setFlitRate(0.0);
    sim.net().run(3000);
    EXPECT_EQ(sim.net().stats().delivered,
              sim.net().stats().injected);
    EXPECT_GT(sim.net().stats().delivered, 200u);
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

TEST(Network, MixedRadicesRequireTorus)
{
    SimulationConfig cfg = smallConfig();
    cfg.topology = "mesh";
    cfg.radices = "4x4";
    EXPECT_THROW(Simulation{cfg}, FatalError);
}

TEST(Network, BigTorusSpotCheck)
{
    // The paper's 8-ary 3-cube (512 nodes) runs and delivers.
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 3;
    cfg.flitRate = 0.1;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(500, 1500);
    EXPECT_GT(s.delivered, 2000u);
    EXPECT_NEAR(s.acceptedFlitRate, 0.1, 0.02);
}

} // namespace
} // namespace wormnet
