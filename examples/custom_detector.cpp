/**
 * @file
 * Extending wormnet: plugging a user-defined deadlock detector into
 * the simulator. The example implements a hybrid mechanism — NDM's
 * inactivity counters with a per-message escalation rule (a message
 * must fail twice with all DT flags set before it is marked) — and
 * compares it against stock NDM under identical traffic.
 *
 * The point of the example is the wiring: any subclass of
 * DeadlockDetector can be driven by Network; only local,
 * hardware-plausible information reaches the hooks.
 */

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "detection/ndm.hh"
#include "recovery/progressive.hh"
#include "routing/routing.hh"
#include "sim/network.hh"
#include "topology/torus.hh"
#include "traffic/length.hh"
#include "traffic/pattern.hh"

namespace
{

using namespace wormnet;

/**
 * NDM with a confirmation step: the first all-DT verdict only arms
 * the message; the mark happens if the condition still holds on a
 * later attempt at least `confirmGap` cycles later.
 */
class ConfirmingNdm : public NdmDetector
{
  public:
    ConfirmingNdm(const NdmParams &params, Cycle confirm_gap)
        : NdmDetector(params), confirmGap_(confirm_gap)
    {
    }

    void
    init(const DetectorContext &ctx) override
    {
        NdmDetector::init(ctx);
        armedAt_.clear();
    }

    bool
    onRoutingFailed(NodeId router, PortId in_port, VcId in_vc,
                    MsgId msg, PortMask feasible, bool fully_busy,
                    bool first, Cycle now) override
    {
        const bool verdict = NdmDetector::onRoutingFailed(
            router, in_port, in_vc, msg, feasible, fully_busy, first,
            now);
        if (!verdict) {
            armedAt_.erase(msg);
            return false;
        }
        const auto it = armedAt_.find(msg);
        if (it == armedAt_.end()) {
            armedAt_[msg] = now;
            return false; // armed, not yet confirmed
        }
        return now - it->second >= confirmGap_;
    }

    std::string
    name() const override
    {
        return "confirming-" + NdmDetector::name();
    }

  private:
    Cycle confirmGap_;
    std::unordered_map<MsgId, Cycle> armedAt_;
};

double
runWith(DeadlockDetector &det, double rate)
{
    KAryNCube topo(8, 2);
    UniformPattern pattern(topo);
    MixLength lengths({{16, 0.6}, {64, 0.4}});

    NetworkParams np; // paper defaults
    RouterParams rp;
    rp.netPorts = topo.numNetPorts();
    rp.injPorts = np.injPorts;
    rp.ejePorts = np.ejePorts;
    rp.vcs = np.vcs;
    rp.bufDepth = np.bufDepth;
    TrueFullyAdaptiveRouting routing(topo, rp);
    ProgressiveRecovery rec(ProgressiveParams{});

    Network net(topo, np, routing, det, &rec, pattern, lengths, rate,
                7);
    net.run(2500);
    net.startMeasurement();
    net.run(10000);
    return net.stats().detectionRate();
}

} // namespace

int
main()
{
    std::printf("custom detector example: stock NDM vs a "
                "confirmation-step variant\n");
    std::printf("(8-ary 2-cube, uniform 'sl' traffic)\n\n");
    std::printf("%-12s %-28s %-28s\n", "load", "ndm:16",
                "confirming ndm:16 (+32cy)");
    for (const double rate : {0.64, 0.74, 0.82}) {
        NdmDetector stock(
            NdmParams{1, 16, GpRearmPolicy::WaitersOnChannel});
        ConfirmingNdm confirming(
            NdmParams{1, 16, GpRearmPolicy::WaitersOnChannel}, 32);
        const double a = runWith(stock, rate);
        const double b = runWith(confirming, rate);
        std::printf("%-12.2f %-28.4f %-28.4f  (%% of messages)\n",
                    rate, a * 100.0, b * 100.0);
    }
    std::printf("\nThe confirmation step trades detection latency "
                "for fewer false\npositives — the same axis the "
                "paper's t2 tunes, expressed as a\nuser extension "
                "without touching library code.\n");
    return 0;
}
