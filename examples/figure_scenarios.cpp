/**
 * @file
 * Narrated walk-through of the paper's worked examples (Figures 2-4)
 * on a 13-node ring with one virtual channel, printing the state of
 * the detection hardware as the scenario unfolds:
 *
 *  - Figure 2: messages B, C, D pile up behind the advancing message
 *    A. Only B (which watched A advance) holds a Generate flag; no
 *    deadlock is detected because A keeps the channel active.
 *  - Figure 3: A drains away; E takes over its channel and later
 *    blocks on D's worm, closing a true deadlock.
 *  - Figure 4: the Generate holders exceed threshold t2 and trigger
 *    recovery; the deadlock dissolves and every message arrives.
 *
 * Run with --t2 <cycles> to change the detection threshold and
 * --trace to dump the full event trace at the end.
 */

#include <cstdio>
#include <memory>

#include "common/config.hh"
#include "detection/ndm.hh"
#include "recovery/progressive.hh"
#include "routing/routing.hh"
#include "sim/network.hh"
#include "sim/oracle.hh"
#include "sim/trace.hh"
#include "topology/torus.hh"
#include "traffic/length.hh"
#include "traffic/pattern.hh"

namespace
{

using namespace wormnet;

void
printStatus(Network &net, NdmDetector &det,
            const std::vector<std::pair<char, MsgId>> &msgs)
{
    std::printf("  cycle %-5llu ",
                static_cast<unsigned long long>(net.now()));
    for (const auto &[name, id] : msgs) {
        const Message &m = net.messages().get(id);
        const char *state = "queued ";
        char flag = '-';
        switch (m.status) {
          case MsgStatus::Queued:
            state = "queued ";
            break;
          case MsgStatus::Active:
            state = "active ";
            break;
          case MsgStatus::Recovering:
            state = "recover";
            break;
          case MsgStatus::Delivered:
            state = "done   ";
            break;
          case MsgStatus::Killed:
            state = "killed ";
            break;
          case MsgStatus::Abandoned:
            state = "abandon";
            break;
        }
        if (m.status == MsgStatus::Active && m.numLinks() > 0) {
            const PathLink head = m.headLink();
            const InputVc &vc =
                net.router(head.node).inputVc(head.port, head.vc);
            if (vc.attempted && !vc.routed) {
                state = "BLOCKED";
                flag = det.gpFlag(head.node, head.port) ? 'G' : 'P';
            }
        }
        std::printf("%c:%s/%c  ", name, state, flag);
    }
    const auto deadlocked = findDeadlockedMessages(net);
    std::printf("deadlocked=%zu\n", deadlocked.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cli = Config::parseArgs(argc - 1, argv + 1);
    const Cycle t2 = cli.getUint("t2", 32);

    KAryNCube topo(13, 1);
    UniformPattern pattern(topo);
    FixedLength lengths(16);

    NetworkParams np;
    np.vcs = 1;
    np.bufDepth = 4;
    np.injPorts = 1;
    np.ejePorts = 1;
    np.injectionLimit = false;
    np.selection = VcSelection::FirstFit;
    np.oraclePeriod = 0;

    RouterParams rp;
    rp.netPorts = topo.numNetPorts();
    rp.injPorts = np.injPorts;
    rp.ejePorts = np.ejePorts;
    rp.vcs = np.vcs;
    rp.bufDepth = np.bufDepth;
    TrueFullyAdaptiveRouting routing(topo, rp);

    NdmDetector det(
        NdmParams{1, t2, GpRearmPolicy::WaitersOnChannel});
    ProgressiveRecovery rec(ProgressiveParams{});

    Network net(topo, np, routing, det, &rec, pattern, lengths, 0.0,
                1);
    Tracer tracer;
    net.attachTracer(&tracer);

    std::printf("Paper figures walk-through on a 13-node ring "
                "(1 VC, NDM t1=1, t2=%llu)\n\n",
                static_cast<unsigned long long>(t2));

    std::printf("Figure 2: building the blocked tree behind the "
                "advancing message A\n");
    std::vector<std::pair<char, MsgId>> msgs;
    const MsgId a = net.injectMessage(4, 8, 150);
    msgs.push_back({'A', a});
    net.run(6);
    const MsgId b = net.injectMessage(3, 7, 24);
    msgs.push_back({'B', b});
    net.run(25);
    printStatus(net, det, msgs);
    const MsgId c = net.injectMessage(2, 4, 24);
    msgs.push_back({'C', c});
    net.run(20);
    const MsgId d = net.injectMessage(10, 3, 24);
    msgs.push_back({'D', d});
    net.run(20);
    printStatus(net, det, msgs);
    std::printf("  -> B holds G (it watched A advance); C and D "
                "hold P (their\n"
                "     predecessors were already blocked). No "
                "detection: A keeps\n"
                "     B's requested channel active.\n\n");

    std::printf("Figure 3: E parks at node 5, takes over A's "
                "channel when A\n"
                "drains, then blocks on D's worm -- the cycle "
                "closes\n");
    const MsgId e = net.injectMessage(5, 11, 24);
    msgs.push_back({'E', e});
    net.run(120);
    printStatus(net, det, msgs);
    net.run(60);
    printStatus(net, det, msgs);
    std::printf("  -> A delivered; B, C, D, E now form a true "
                "deadlock. B (and C,\n"
                "     re-armed when B briefly advanced) hold G; "
                "D and E hold P.\n\n");

    std::printf("Figure 4: the Generate holders exceed t2 and "
                "trigger recovery\n");
    for (int i = 0; i < 6; ++i) {
        net.run(120);
        printStatus(net, det, msgs);
    }

    const SimStats &s = net.stats();
    std::printf("\nsummary: %llu detections, %llu recovered "
                "deliveries, %llu delivered in total\n",
                static_cast<unsigned long long>(s.detections),
                static_cast<unsigned long long>(
                    s.recoveredDeliveries),
                static_cast<unsigned long long>(s.delivered));

    if (cli.getBool("trace", false))
        std::printf("\nevent trace:\n%s", tracer.toString().c_str());
    return 0;
}
