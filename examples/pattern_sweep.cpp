/**
 * @file
 * Classic NoC evaluation curves: latency and accepted throughput vs.
 * offered load for each of the paper's traffic patterns, plus the
 * NDM detection percentage at each point. Prints one table per
 * pattern; use --csv for machine-readable output.
 *
 * Usage:
 *   pattern_sweep [--radix 8 --dims 2] [--lengths s] [--points 8]
 *                 [--patterns uniform,bitrev,...] [--csv]
 */

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const Config cli = Config::parseArgs(argc - 1, argv + 1);
    SimulationConfig base = SimulationConfig::fromConfig(cli);
    if (!cli.has("detector"))
        base.detector = "ndm:32";

    std::vector<std::string> patterns;
    {
        std::stringstream ss(cli.getString(
            "patterns",
            "uniform,locality:3,bitrev,shuffle,butterfly,"
            "hotspot:0.05"));
        std::string item;
        while (std::getline(ss, item, ','))
            patterns.push_back(item);
    }
    const unsigned points =
        static_cast<unsigned>(cli.getUint("points", 8));
    const bool csv = cli.getBool("csv", false);
    const Cycle warmup = cli.getUint("warmup", 2000);
    const Cycle measure = cli.getUint("measure", 6000);

    const ExperimentRunner runner([](const std::string &) {
        std::fputc('.', stderr);
        std::fflush(stderr);
    });

    for (const auto &pattern : patterns) {
        SimulationConfig cfg = base;
        cfg.pattern = pattern;
        const double sat =
            runner.findSaturationRate(cfg, 0.02, 4.0);

        TextTable table(5);
        table.addRow({"offered (f/c/n)", "accepted", "latency",
                      "det %", "recovered"});
        table.addSeparator();
        for (unsigned i = 1; i <= points; ++i) {
            const double rate =
                sat * 1.2 * static_cast<double>(i) / points;
            cfg.flitRate = rate;
            const CellResult cell =
                runner.runCell(cfg, warmup, measure);
            char off[32], acc[32], lat[32], recov[32];
            std::snprintf(off, sizeof(off), "%.3f", rate);
            std::snprintf(acc, sizeof(acc), "%.3f",
                          cell.acceptedFlitRate);
            std::snprintf(lat, sizeof(lat), "%.1f",
                          cell.avgLatency);
            std::snprintf(recov, sizeof(recov), "%llu",
                          static_cast<unsigned long long>(
                              cell.detectedMessages));
            table.addRow({off, acc, lat,
                          formatPercentPaperStyle(
                              cell.detectionRate),
                          recov});
        }
        std::fputc('\n', stderr);
        std::printf("pattern %s (saturation ~ %.3f "
                    "flits/cycle/node):\n%s\n",
                    pattern.c_str(), sat,
                    csv ? table.renderCsv().c_str()
                        : table.render().c_str());
    }
    return 0;
}
