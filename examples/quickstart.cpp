/**
 * @file
 * Quickstart: build a simulator for the paper's network model, run it
 * under uniform traffic near saturation, and print the headline
 * statistics — including how many messages the NDM detector marked as
 * presumed deadlocked and how many of those the ground-truth oracle
 * confirmed.
 *
 * Usage (all options have sensible defaults):
 *   quickstart [--radix 8] [--dims 3] [--rate 0.35]
 *              [--detector ndm:32] [--pattern uniform] [--lengths s]
 *              [--warmup 3000] [--measure 15000] [--seed 1]
 */

#include <cstdio>

#include "core/report.hh"
#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;

    const Config cli = Config::parseArgs(argc - 1, argv + 1);
    SimulationConfig cfg = SimulationConfig::fromConfig(cli);
    if (!cli.has("rate"))
        cfg.flitRate = 0.35;

    const Cycle warmup = cli.getUint("warmup", 3000);
    const Cycle measure = cli.getUint("measure", 15000);

    Simulation sim(cfg);
    std::printf("wormnet quickstart\n");
    std::printf("  topology:  %s\n", sim.topology().name().c_str());
    std::printf("  routing:   %s\n", cfg.routing.c_str());
    std::printf("  detector:  %s\n", cfg.detector.c_str());
    std::printf("  recovery:  %s\n", cfg.recovery.c_str());
    std::printf("  pattern:   %s, lengths: %s, rate: %.3f\n\n",
                cfg.pattern.c_str(), cfg.lengths.c_str(),
                cfg.flitRate);

    const SimSummary summary = sim.warmupAndMeasure(warmup, measure);
    if (cli.getBool("report", false)) {
        std::printf("%s", buildReport(sim).c_str());
        return 0;
    }
    std::printf("%s", summary.toString().c_str());

    const RunningStat util = sim.net().utilizationSummary();
    std::printf("channel utilisation:    mean %.3f, max %.3f "
                "flits/cycle\n",
                util.mean(), util.max());
    return 0;
}
