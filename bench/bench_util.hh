/**
 * @file
 * Shared harness for the paper-table benches.
 *
 * Each bench binary reproduces one of the paper's Tables 1-7: a grid
 * of "percentage of messages detected as possibly deadlocked" over
 * detection thresholds (rows), injection rates (column groups) and
 * message-size classes (columns). The paper's absolute injection
 * rates belong to its 512-node testbed; the benches instead sweep the
 * same *relative* loads — fractions of the pattern's measured
 * saturation rate on the configured network — and print the measured
 * rates in the column headers. Cells are starred when the
 * ground-truth oracle confirmed a true deadlock, like the paper's
 * "(*)" annotation; the paper's reference values are printed in
 * parentheses next to the measured ones.
 *
 * Common options:
 *   --quick            small thresholds/cycles grid (CI smoke run)
 *   --full             the paper's full grid on the 8-ary 3-cube
 *   --radix/--dims/... any SimulationConfig option
 *   --sat <rate>       override the calibrated saturation rate
 *   --calibrate        re-measure the saturation rate first
 *   --warmup/--measure cycles
 *   --seeds <n>        average n independent seeds per cell
 *   --jobs <n>         worker threads for independent simulations
 *                      (default: WORMNET_JOBS env, else hardware
 *                      concurrency; 1 = serial). The table printed on
 *                      stdout is bitwise-identical for every value;
 *                      jobs and the measured speedup go to stderr.
 *   --sim-jobs <n>     worker threads INSIDE each simulation
 *                      (sharded stepping; default: WORMNET_SIM_JOBS
 *                      env, else 1). Orthogonal to --jobs: --jobs
 *                      parallelises sweep cells, --sim-jobs shards
 *                      one simulation's per-cycle passes across
 *                      contiguous node ranges. Output is
 *                      bitwise-identical at every value of both
 *                      (see "Sharded stepping" in
 *                      docs/MECHANISMS.md).
 *   --csv              also dump the table as CSV
 *   --checkpoint <f>   periodically save finished cells to <f>
 *   --checkpoint-every <n>  cells between saves (default 8)
 *   --resume <f>       restore finished cells from <f> and skip
 *                      them; the printed table is byte-identical to
 *                      an uninterrupted run at any --jobs
 */

#ifndef WORMNET_BENCH_BENCH_UTIL_HH
#define WORMNET_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace wormnet
{
namespace bench
{

/** The paper's reference values for one table. */
struct PaperRef
{
    /** Thresholds the paper reports (row labels). */
    std::vector<Cycle> thresholds;
    /** Percentages, [threshold][rate * sizes + size]; the paper has
     *  4 rate groups in every table. */
    std::vector<double> values;
};

/** Everything a table bench needs. */
struct BenchOptions
{
    SimulationConfig base;
    std::vector<Cycle> thresholds;
    /** Load fractions of the saturation rate, one per column group.
     *  The last one is > 1 (the paper's "(saturated)" column). */
    std::vector<double> loadFractions = {0.714, 0.786, 0.857, 1.10};
    double satRate = 0.0;
    Cycle warmup = 3000;
    Cycle measure = 15000;
    /** Seeds averaged per cell (--seeds N). */
    unsigned replications = 1;
    /** Worker threads (--jobs N; 0 = WORMNET_JOBS env, else hardware
     *  concurrency). */
    unsigned jobs = 0;
    bool csv = false;
    bool quiet = false;

    /** @name Sweep checkpointing (see ExperimentRunner). */
    /// @{
    std::string checkpoint; ///< --checkpoint FILE (empty disables)
    unsigned checkpointEvery = 8; ///< --checkpoint-every N cells
    std::string resume;     ///< --resume FILE (empty disables)
    /// @}
};

/**
 * Parse common bench options.
 * @param pattern the paper pattern this table uses (spec string)
 * @param default_sat calibrated saturation rate for the default
 *        64-node configuration (flits/cycle/node, "s" messages)
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            const std::string &pattern,
                            double default_sat);

/**
 * Run the table and print it, with the paper's value (when the paper
 * reports that grid point) in parentheses next to each measured cell.
 */
void runTableBench(const std::string &title, const BenchOptions &opts,
                   const std::string &detector_template,
                   const std::vector<std::string> &size_classes,
                   const PaperRef *paper = nullptr);

} // namespace bench
} // namespace wormnet

#endif // WORMNET_BENCH_BENCH_UTIL_HH
