/**
 * @file
 * Chaos harness: online reconfiguration on a saturated torus, with
 * optional concurrent faults, cycle-granular checkpointing and a
 * deliberate mid-run crash — the scenario scripts/chaos.sh storms.
 *
 * The run applies a reconfiguration plan (default: a link outage, a
 * router maintenance drain and a live routing switch, all restored
 * before the drain phase) to a network near saturation, then reports
 * a JSON object on stdout: one entry per applied epoch (worms
 * killed / rerouted / redelivered / abandoned, settle latency,
 * detector health and the static analyzer's verdict on the
 * post-epoch configuration) plus a summary with the
 * runtime-vs-static agreement bit. Timing goes to stderr; stdout is
 * bitwise-deterministic, including across kill/resume, which is what
 * the chaos script diffs.
 *
 * Exit codes: 0 ok; 86 deliberate --crash-at exit; 2 when the drained
 * network still holds an unresolved deadlock or a reconfig transient
 * never settled (runtime/static disagreement).
 *
 * Options:
 *   --reconfig PLAN     reconfiguration plan (see --help of wormnet);
 *                       default: computed from the phase boundaries
 *   --faults SPEC       concurrent fault schedule (default none)
 *   --repair N          fault self-repair delay (default 300)
 *   --load r            offered load in flits/cycle/node (default 0.6,
 *                       near saturation)
 *   --radix/--dims      network shape (default 16-ary 2-cube)
 *   --warmup/--measure/--drain N
 *   --quick             8x8 torus, small cycle counts (CI smoke run)
 *   --seed N
 *   --checkpoint FILE   save a cycle-granular checkpoint periodically
 *   --checkpoint-every N  cycles between saves (default 1000)
 *   --resume FILE       restore and continue a crashed run
 *   --crash-at C        save to --checkpoint and _Exit(86) at cycle C
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;

    unsigned radix = 16;
    unsigned dims = 2;
    Cycle warmup = 2000;
    Cycle measure = 10000;
    Cycle drain = 8000;
    Cycle repair = 300;
    double load = 0.6;
    std::uint64_t seed = 1;
    std::string reconfig;
    std::string faults;
    std::string checkpoint;
    Cycle checkpointEvery = 1000;
    std::string resume;
    Cycle crashAt = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            radix = 8;
            warmup = 500;
            measure = 2500;
            drain = 4000;
        } else if (arg == "--reconfig") {
            reconfig = next();
        } else if (arg == "--faults") {
            faults = next();
        } else if (arg == "--repair") {
            repair = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--load") {
            load = std::strtod(next(), nullptr);
        } else if (arg == "--radix") {
            radix = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--dims") {
            dims = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--measure") {
            measure = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--drain") {
            drain = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--checkpoint") {
            checkpoint = next();
        } else if (arg == "--checkpoint-every") {
            checkpointEvery = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--resume") {
            resume = next();
        } else if (arg == "--crash-at") {
            crashAt = std::strtoull(next(), nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 1;
        }
    }

    if (reconfig.empty()) {
        // Default storm, scaled to the phase boundaries: lose a hot
        // link, drain a router for maintenance, switch the routing
        // function live, then restore everything well before the
        // drain phase so the run can settle.
        char plan[256];
        const unsigned long long m0 = warmup + measure / 6;
        std::snprintf(
            plan, sizeof(plan),
            "link-:0>1@%llu,router-:3@%llu,routing:duato@%llu,"
            "link+:0>1@%llu,router+:3@%llu,routing:tfa@%llu",
            m0, m0 + measure / 6, m0 + 2 * (measure / 6),
            m0 + 3 * (measure / 6), m0 + 4 * (measure / 6),
            m0 + 5 * (measure / 6));
        reconfig = plan;
    }

    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = radix;
    cfg.dims = dims;
    cfg.flitRate = load;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 128;
    cfg.seed = seed;
    cfg.reconfig = reconfig;
    cfg.faults = faults;
    if (!faults.empty())
        cfg.faultRepair = repair;

    Simulation sim(cfg);
    Network &net = sim.net();
    if (!resume.empty())
        sim.loadCheckpoint(resume);
    const Cycle resumedAt = net.now();

    const std::clock_t t0 = std::clock();
    const Cycle active = warmup + measure;
    while (net.now() < active) {
        const Cycle now = net.now();
        // Phase transitions first (idempotent), so a checkpoint taken
        // at this cycle already reflects them and resume never
        // replays one.
        if (now >= warmup && !net.measuring())
            net.startMeasurement();
        if (!checkpoint.empty() && checkpointEvery > 0 && now > 0 &&
            now % checkpointEvery == 0 && now != resumedAt)
            sim.saveCheckpoint(checkpoint);
        if (crashAt > 0 && now == crashAt && now > resumedAt) {
            if (checkpoint.empty()) {
                std::fprintf(stderr,
                             "--crash-at needs --checkpoint\n");
                return 1;
            }
            sim.saveCheckpoint(checkpoint);
            std::fflush(nullptr);
            std::_Exit(86);
        }
        net.step();
    }

    // Drain: stop offering load; retries, recoveries and the settle
    // bookkeeping of the last epochs all complete here.
    net.setFlitRate(0.0);
    Cycle drained = 0;
    while ((net.inFlight() > 0 || net.totalQueued() > 0) &&
           drained < drain) {
        net.run(100);
        drained += 100;
    }
    const double wall =
        double(std::clock() - t0) / double(CLOCKS_PER_SEC);

    const ReconfigManager *mgr = sim.reconfigManager();
    const SimStats &s = net.stats();
    const bool settled = mgr != nullptr && mgr->settled();
    const bool residualDeadlock = !net.deadlockedNow().empty();
    // The acceptance bit: every epoch's transient either stayed
    // deadlock-free or was recovered from — nothing is still
    // deadlocked or in limbo once the network drained.
    const bool agreement = settled && !residualDeadlock;

    std::printf("{\n");
    std::printf("  \"config\": {\"radix\": %u, \"dims\": %u, "
                "\"load\": %g, \"seed\": %llu,\n"
                "    \"reconfig\": \"%s\", \"faults\": \"%s\"},\n",
                radix, dims, load, (unsigned long long)seed,
                reconfig.c_str(), faults.c_str());
    std::printf("  \"epochs\": [\n");
    const auto &epochs =
        mgr ? mgr->epochs() : std::vector<EpochRecord>{};
    for (std::size_t i = 0; i < epochs.size(); ++i) {
        const EpochRecord &e = epochs[i];
        const bool hasSettle = e.settled();
        std::printf(
            "    {\"cycle\": %llu, \"edits\": %u, "
            "\"routing_after\": \"%s\",\n"
            "     \"static_verdict\": \"%s\",\n"
            "     \"killed\": %llu, \"rerouted\": %llu, "
            "\"redelivered\": %llu, \"abandoned\": %llu,\n"
            "     \"settle_cycle\": %lld, \"settle_latency\": %lld,\n"
            "     \"detections_at_apply\": %llu, "
            "\"false_at_apply\": %llu, "
            "\"oracle_deadlocked_at_apply\": %llu}%s\n",
            (unsigned long long)e.cycle, e.edits,
            e.routingAfter.c_str(), e.staticVerdict.c_str(),
            (unsigned long long)e.killed,
            (unsigned long long)e.rerouted,
            (unsigned long long)e.redelivered,
            (unsigned long long)e.abandonedOfKilled,
            hasSettle ? (long long)e.settleCycle : -1LL,
            hasSettle ? (long long)(e.settleCycle - e.cycle) : -1LL,
            (unsigned long long)e.detectionsAtApply,
            (unsigned long long)e.falseAtApply,
            (unsigned long long)e.oracleDeadlockedAtApply,
            i + 1 < epochs.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"summary\": {\"generated\": %llu, \"delivered\": %llu, "
        "\"abandoned\": %llu,\n"
        "    \"fault_kills\": %llu, \"fault_reroutes\": %llu, "
        "\"detections\": %llu,\n"
        "    \"false_positives\": %llu, \"plan_exhausted\": %s, "
        "\"settled\": %s,\n"
        "    \"residual_deadlock\": %s, "
        "\"runtime_static_agreement\": %s,\n"
        "    \"in_flight_end\": %zu, \"queued_end\": %zu}\n",
        (unsigned long long)s.generated,
        (unsigned long long)s.delivered,
        (unsigned long long)s.abandoned,
        (unsigned long long)s.faultKills,
        (unsigned long long)s.faultReroutes,
        (unsigned long long)s.detections,
        (unsigned long long)s.wFalseDetections,
        mgr && mgr->planExhausted() ? "true" : "false",
        settled ? "true" : "false",
        residualDeadlock ? "true" : "false",
        agreement ? "true" : "false", net.inFlight(),
        net.totalQueued());
    std::printf("}\n");

    std::fprintf(stderr, "wall: %.2fs  cycles: %llu\n", wall,
                 (unsigned long long)net.now());
    return agreement ? 0 : 2;
}
