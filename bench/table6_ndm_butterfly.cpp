/**
 * @file
 * Table 6: NDM detection percentages under the butterfly permutation
 * (dst = src with most- and least-significant bits swapped). The
 * paper confirms true deadlocks at the saturated load for the "s"
 * and "sl" columns — the starred cells.
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 6, columns [s, l, sl] per rate group
// (0.107, 0.118, 0.129, 0.139 saturated).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
    {
        // Th 2
        .007, .006, .089, .033, .015, .300,
        .296, .092, 1.22, 2.70, .920, 4.60,
        // Th 4
        .000, .000, .006, .000, .000, .032,
        .030, .004, .261, .885, .116, 1.94,
        // Th 8
        .000, .000, .000, .000, .000, .004,
        .005, .001, .102, .437, .026, 1.38,
        // Th 16
        .000, .000, .000, .000, .000, .003,
        .000, .000, .084, .298, .018, 1.23,
        // Th 32
        .000, .000, .000, .000, .000, .002,
        .000, .000, .063, .191, .015, 1.03,
        // Th 64
        .000, .000, .000, .000, .000, .001,
        .000, .000, .029, .103, .011, .785,
        // Th 128
        .000, .000, .000, .000, .000, .001,
        .000, .000, .013, .075, .004, .420,
        // Th 256
        .000, .000, .000, .000, .000, .000,
        .000, .000, .004, .067, .000, .230,
        // Th 512
        .000, .000, .000, .000, .000, .000,
        .000, .000, .002, .065, .000, .155,
        // Th 1024
        .000, .000, .000, .000, .000, .000,
        .000, .000, .002, .065, .000, .145,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "butterfly", /*default_sat=*/0.62);
    wormnet::bench::runTableBench(
        "Table 6: NDM, butterfly traffic", opts, "ndm:%T",
        {"s", "l", "sl"}, &kPaper);
    return 0;
}
