/**
 * @file
 * Ablation: the G/P re-arm policy. The paper specifies that when an
 * I flag resets, "the G/P flags of those channels containing
 * messages waiting for that output channel should be set to G" (the
 * selective policy), and offers "changing all the P flags in a
 * router to G" as a simpler implementation while warning it "may
 * lead to an increase in the number of false deadlocks detected. We
 * are currently studying this issue."
 *
 * This bench quantifies that open question: the coarse policy loses
 * most of NDM's advantage over PDM under congestion because every
 * transmission-after-idle anywhere in a router re-arms all of its
 * inputs.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const auto opts = bench::parseBenchArgs(argc, argv, "uniform",
                                            /*default_sat=*/0.74);
    const ExperimentRunner runner(
        [](const std::string &) {
            std::fputc('.', stderr);
            std::fflush(stderr);
        },
        opts.jobs);

    const std::vector<Cycle> thresholds = {4, 8, 16, 32, 64};
    const std::vector<std::pair<std::string, std::string>> variants =
        {{"ndm selective", "ndm:%:1:selective"},
         {"ndm coarse", "ndm:%:1:coarse"},
         {"pdm (reference)", "pdm:%"}};
    const std::vector<double> fractions = {0.857, 1.10};

    for (const double f : fractions) {
        TextTable table(1 + thresholds.size());
        std::vector<std::string> head = {"policy"};
        for (const Cycle th : thresholds)
            head.push_back("Th " + std::to_string(th));
        table.addRow(head);
        table.addSeparator();

        for (const auto &[label, tmpl] : variants) {
            std::vector<std::string> row = {label};
            for (const Cycle th : thresholds) {
                SimulationConfig cfg = opts.base;
                cfg.lengths = "sl";
                cfg.flitRate = f * opts.satRate;
                std::string det = tmpl;
                det.replace(det.find('%'), 1, std::to_string(th));
                cfg.detector = det;
                const CellResult cell =
                    runner.runCell(cfg, opts.warmup, opts.measure);
                row.push_back(
                    formatPercentPaperStyle(cell.detectionRate));
            }
            table.addRow(row);
        }
        std::fputc('\n', stderr);
        std::printf("G/P re-arm ablation at %.0f%% of saturation "
                    "(uniform, 'sl'):\n%s\n",
                    f * 100, table.render().c_str());
    }
    return 0;
}
