/**
 * @file
 * Table 1: percentage of messages detected as possibly deadlocked by
 * the PREVIOUS detection mechanism (PDM, Martínez et al. ICPP'97).
 * True fully adaptive routing, 3 VCs per physical channel, uniform
 * destinations, message sizes s/l/L/sl, loads up to saturation.
 *
 * Expected shape (paper): detection percentages fall with the
 * threshold, but depend strongly on message length below saturation
 * (longer messages need proportionally larger thresholds), and remain
 * high at saturation unless the threshold is very large.
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 1, percentages; columns are [s, l, L, sl] for each of
// the four injection-rate groups (0.428, 0.471, 0.514, 0.600).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
    {
        // Th 2
        .055, .191, .295, .299, .199, .662, 1.08, 1.03,
        .605, 2.37, 4.61, 4.86, 26.0, 30.5, 33.4, 36.0,
        // Th 4
        .000, .014, .025, .033, .023, .043, .088, .094,
        .100, .205, .335, .736, 13.1, 7.75, 6.64, 13.4,
        // Th 8
        .000, .003, .010, .005, .007, .011, .026, .036,
        .020, .095, .115, .355, 8.58, 5.07, 3.95, 9.87,
        // Th 16
        .000, .003, .010, .005, .004, .007, .026, .024,
        .000, .072, .115, .260, 5.45, 4.42, 3.83, 8.32,
        // Th 32
        .000, .002, .010, .005, .000, .005, .023, .013,
        .000, .050, .110, .155, 2.96, 3.24, 3.66, 5.87,
        // Th 64
        .000, .000, .010, .001, .000, .004, .021, .005,
        .000, .012, .090, .038, 1.71, 1.63, 3.30, 3.20,
        // Th 128
        .000, .000, .005, .001, .000, .002, .018, .000,
        .000, .002, .070, .008, 1.24, .350, 2.50, 1.57,
        // Th 256
        .000, .000, .005, .000, .000, .000, .005, .000,
        .000, .000, .045, .000, .840, .020, 1.27, 1.01,
        // Th 512
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .005, .000, .400, .000, .290, .680,
        // Th 1024
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .002, .000, .110, .000, .020, .290,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "uniform", /*default_sat=*/0.74);
    wormnet::bench::runTableBench(
        "Table 1: previous detection mechanism (PDM), uniform "
        "traffic",
        opts, "pdm:%T", {"s", "l", "L", "sl"}, &kPaper);
    return 0;
}
