/**
 * @file
 * Table 3: NDM detection percentages under uniform traffic with
 * locality (destinations within a bounded Manhattan ball). Short
 * average distances push the saturation rate far above uniform's and
 * detection percentages are the lowest of all patterns.
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 3, columns [s, l, sl] per rate group
// (1.429, 1.571, 1.857 saturated, 2.000 saturated).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128},
    {
        // Th 2
        .002, .000, .015, .012, .007, .020,
        .030, .037, .052, .050, .049, .052,
        // Th 4
        .000, .000, .007, .002, .000, .010,
        .013, .012, .018, .013, .019, .018,
        // Th 8
        .000, .000, .007, .000, .000, .005,
        .007, .011, .017, .009, .017, .017,
        // Th 16
        .000, .000, .002, .000, .000, .000,
        .003, .006, .009, .005, .013, .009,
        // Th 32
        .000, .000, .002, .000, .000, .000,
        .000, .004, .004, .001, .005, .004,
        // Th 64
        .000, .000, .002, .000, .000, .000,
        .000, .001, .001, .000, .000, .001,
        // Th 128
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .000, .000, .000,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "locality:3", /*default_sat=*/1.22);
    // The paper reports two saturated load points for this pattern.
    opts.loadFractions = {0.714, 0.786, 0.93, 1.10};
    wormnet::bench::runTableBench(
        "Table 3: NDM, uniform traffic with locality", opts,
        "ndm:%T", {"s", "l", "sl"}, &kPaper);
    return 0;
}
