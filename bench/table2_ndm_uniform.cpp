/**
 * @file
 * Table 2: percentage of messages detected as possibly deadlocked by
 * the NEW detection mechanism (NDM). True fully adaptive routing, 3
 * VCs per physical channel, uniform destinations, sizes s/l/L/sl.
 *
 * Expected shape (paper): roughly an order of magnitude fewer
 * detections than PDM at every grid point (compare Table 1), with a
 * much weaker dependence on message length — a single constant
 * threshold (e.g. 32) keeps the false-detection rate low even at
 * saturation.
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 2, percentages; columns [s, l, L, sl] per rate group
// (0.428, 0.471, 0.514, 0.600 saturated).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
    {
        // Th 2
        .000, .021, .055, .028, .015, .069, .123, .086,
        .045, .097, .555, .513, 2.40, 3.75, 4.33, 3.92,
        // Th 4
        .000, .000, .005, .001, .001, .005, .000, .002,
        .000, .002, .125, .045, .830, .551, .412, .900,
        // Th 8
        .000, .000, .000, .000, .000, .001, .000, .002,
        .000, .000, .005, .020, .417, .283, .178, .560,
        // Th 16
        .000, .000, .000, .000, .000, .000, .000, .001,
        .000, .000, .005, .010, .205, .218, .168, .447,
        // Th 32
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .005, .006, .069, .138, .159, .280,
        // Th 64
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .005, .001, .035, .054, .132, .100,
        // Th 128
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .002, .000, .027, .011, .084, .040,
        // Th 256
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .002, .000, .015, .002, .037, .030,
        // Th 512
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .000, .005, .000, .009, .017,
        // Th 1024
        .000, .000, .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .000, .000, .000, .000, .007,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "uniform", /*default_sat=*/0.74);
    wormnet::bench::runTableBench(
        "Table 2: new detection mechanism (NDM), uniform traffic",
        opts, "ndm:%T", {"s", "l", "L", "sl"}, &kPaper);
    return 0;
}
