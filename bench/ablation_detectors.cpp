/**
 * @file
 * Ablation: detection-mechanism comparison. Runs NDM, PDM and the
 * exact distributed wait-for-graph detector (DWFG) at a common
 * trigger threshold across light, saturated, hot-spot and faulty
 * scenarios and reports, as a JSON array on stdout, the
 * oracle-labelled true/false detection counts, the mean detection
 * latency and the modeled control-plane overhead (flits, flit-hops,
 * bytes) of each mechanism — the trade-off the DWFG embodies: zero
 * false positives by construction, paid for in control bandwidth and
 * detection latency, versus the heuristic mechanisms' free but
 * fallible verdicts.
 *
 * Options:
 *   --threshold N       common trigger threshold (default 32)
 *   --warmup/--measure/--drain N
 *   --quick             4x4 network and small cycle counts (CI smoke
 *                       and the golden snapshot)
 *   --seed N
 *   --jobs N            worker threads (0 = WORMNET_JOBS env, else
 *                       hardware concurrency); the JSON on stdout is
 *                       identical for every value
 *   --sim-jobs N        sharded-stepping workers inside each
 *                       simulation (0 = WORMNET_SIM_JOBS env, else
 *                       sequential); also output-invariant — CI
 *                       diffs 1 vs 8 on the quick configuration
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;

    Cycle warmup = 2000;
    Cycle measure = 10000;
    Cycle drain = 6000;
    Cycle threshold = 32;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    unsigned simJobs = 0;
    unsigned radix = 8;
    bool quick = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
            radix = 4;
            warmup = 500;
            measure = 2500;
            drain = 3000;
        } else if (arg == "--threshold") {
            threshold = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--measure") {
            measure = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--drain") {
            drain = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--sim-jobs") {
            simJobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 1;
        }
    }

    struct Scenario
    {
        const char *name;
        const char *pattern;
        const char *lengths;
        double load; ///< flits/cycle/node
        unsigned vcs;
        bool injectionLimit;
        const char *faults; ///< empty = none
        Cycle faultRepair;
    };
    // The default router (3 VCs + injection limiting) almost never
    // truly deadlocks, so those scenarios measure pure false-positive
    // behaviour; the single-VC unlimited-injection scenarios are
    // genuinely deadlock-prone and measure detection of the real
    // thing (plus fault interaction for the flush path).
    const std::vector<Scenario> scenarios = {
        {"uniform-light", "uniform", "s", 0.15, 3, true, "", 0},
        {"uniform-saturated", "uniform", "sl", 0.66, 3, true, "", 0},
        {"hotspot", "hotspot:0.05", "s", 0.30, 3, true, "", 0},
        {"vc1-congested", "uniform", "sl", 0.50, 1, false, "", 0},
        {"vc1-deadlock", "uniform", "sl", 0.80, 1, false, "", 0},
        {"faulty", "uniform", "s", 0.15, 3, true, "rate:5e-4", 200},
        {"faulty-vc1", "uniform", "sl", 0.50, 1, false, "rate:5e-4",
         200},
    };
    const std::vector<std::string> detectors = {"ndm", "pdm", "dwfg"};

    const std::size_t cells = scenarios.size() * detectors.size();
    std::vector<std::string> entries(cells);
    parallelFor(cells, jobs, [&](std::size_t i) {
        const Scenario &sc = scenarios[i / detectors.size()];
        const std::string &det = detectors[i % detectors.size()];

        SimulationConfig cfg;
        cfg.topology = "torus";
        cfg.radix = radix;
        cfg.dims = 2;
        cfg.pattern = sc.pattern;
        cfg.lengths = sc.lengths;
        cfg.flitRate = sc.load;
        cfg.vcs = sc.vcs;
        cfg.injectionLimit = sc.injectionLimit;
        cfg.detector = det + ":" + std::to_string(threshold);
        cfg.recovery = "regressive:16";
        cfg.oraclePeriod = 64;
        cfg.seed = seed;
        cfg.simJobs = simJobs;
        if (sc.faults[0] != '\0') {
            cfg.faults = sc.faults;
            cfg.faultRepair = sc.faultRepair;
        }

        Simulation sim(cfg);
        Network &net = sim.net();
        net.run(warmup);
        net.startMeasurement();
        net.run(measure);
        const SimSummary sum = sim.summary();

        // Drain so the run ends with empty books (catches leaks and
        // phantom deadlocks in every mechanism, not just the fast
        // ones).
        net.setFlitRate(0.0);
        Cycle drained = 0;
        while ((net.inFlight() > 0 || net.totalQueued() > 0) &&
               drained < drain) {
            net.run(100);
            drained += 100;
        }

        const double fpRate =
            sum.delivered == 0
                ? 0.0
                : double(sum.falseDetections) / double(sum.delivered);
        const double ctrlFlitsPerKcycleNode =
            sum.measuredCycles == 0
                ? 0.0
                : 1000.0 * double(sum.ctrlFlits) /
                      (double(sum.measuredCycles) * net.numNodes());

        char entry[1024];
        std::snprintf(
            entry, sizeof(entry),
            "  {\"scenario\": \"%s\", \"detector\": \"%s\", "
            "\"threshold\": %llu,\n"
            "   \"delivered\": %llu, \"detected_messages\": %llu,\n"
            "   \"true_detections\": %llu, "
            "\"false_detections\": %llu,\n"
            "   \"false_positive_rate\": %.6f, "
            "\"true_deadlocked\": %llu,\n"
            "   \"avg_detection_latency\": %.3f,\n"
            "   \"ctrl_flits\": %llu, \"ctrl_flit_hops\": %llu, "
            "\"ctrl_bytes\": %llu,\n"
            "   \"ctrl_flits_per_kcycle_node\": %.4f,\n"
            "   \"in_flight_end\": %zu, \"queued_end\": %zu}%s\n",
            sc.name, det.c_str(), (unsigned long long)threshold,
            (unsigned long long)sum.delivered,
            (unsigned long long)sum.detectedMessages,
            (unsigned long long)sum.trueDetections,
            (unsigned long long)sum.falseDetections, fpRate,
            (unsigned long long)sum.trueDeadlockedMessages,
            sum.avgDetectionLatency,
            (unsigned long long)sum.ctrlFlits,
            (unsigned long long)sum.ctrlFlitHops,
            (unsigned long long)sum.ctrlBytes, ctrlFlitsPerKcycleNode,
            net.inFlight(), net.totalQueued(),
            i + 1 < cells ? "," : "");
        entries[i] = entry;
    });

    (void)quick;
    std::printf("[\n");
    for (const std::string &entry : entries)
        std::fputs(entry.c_str(), stdout);
    std::printf("]\n");
    return 0;
}
