/**
 * @file
 * google-benchmark microbenchmarks for the simulator itself:
 * per-cycle stepping cost vs. network size and load, the overhead of
 * each detection mechanism's hooks, and the ground-truth oracle's
 * sweep cost. These bound how expensive the paper-table sweeps are
 * and verify the detector hooks stay off the simulator's critical
 * path (mirroring the paper's "simple hardware not in the critical
 * path" argument in simulation form).
 */

#include <benchmark/benchmark.h>

#include "core/simulation.hh"
#include "sim/oracle.hh"

namespace
{

using namespace wormnet;

SimulationConfig
baseConfig(unsigned radix, unsigned dims, double rate,
           const std::string &detector)
{
    SimulationConfig cfg;
    cfg.radix = radix;
    cfg.dims = dims;
    cfg.flitRate = rate;
    cfg.detector = detector;
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 0; // measured separately
    cfg.seed = 1;
    return cfg;
}

void
BM_StepIdleNetwork(benchmark::State &state)
{
    Simulation sim(baseConfig(
        static_cast<unsigned>(state.range(0)), 2, 0.0, "ndm:32"));
    for (auto _ : state)
        sim.net().step();
    state.SetItemsProcessed(state.iterations() *
                            sim.net().numNodes());
}
BENCHMARK(BM_StepIdleNetwork)->Arg(4)->Arg(8)->Arg(16);

void
BM_StepLoadedNetwork(benchmark::State &state)
{
    Simulation sim(baseConfig(
        static_cast<unsigned>(state.range(0)), 2, 0.4, "ndm:32"));
    sim.net().run(2000); // warm the network to steady state
    for (auto _ : state)
        sim.net().step();
    state.SetItemsProcessed(state.iterations() *
                            sim.net().numNodes());
}
BENCHMARK(BM_StepLoadedNetwork)->Arg(4)->Arg(8)->Arg(16);

void
BM_StepPaperNetwork(benchmark::State &state)
{
    // The paper's full 8-ary 3-cube (512 nodes) under load.
    Simulation sim(baseConfig(8, 3, 0.3, "ndm:32"));
    sim.net().run(1000);
    for (auto _ : state)
        sim.net().step();
    state.SetItemsProcessed(state.iterations() *
                            sim.net().numNodes());
}
BENCHMARK(BM_StepPaperNetwork);

void
BM_DetectorOverhead(benchmark::State &state)
{
    static const char *kDetectors[] = {"none", "timeout:32",
                                       "pdm:32", "ndm:32"};
    const std::string detector = kDetectors[state.range(0)];
    Simulation sim(baseConfig(8, 2, 0.6, detector));
    sim.net().run(2000);
    for (auto _ : state)
        sim.net().step();
    state.SetLabel(detector);
}
BENCHMARK(BM_DetectorOverhead)->DenseRange(0, 3);

void
BM_OracleSweep(benchmark::State &state)
{
    Simulation sim(baseConfig(
        static_cast<unsigned>(state.range(0)), 2, 0.6, "ndm:32"));
    sim.net().run(2000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            findDeadlockedMessages(sim.net()));
    }
}
BENCHMARK(BM_OracleSweep)->Arg(8)->Arg(16);

void
BM_SaturatedWithRecovery(benchmark::State &state)
{
    SimulationConfig cfg = baseConfig(8, 2, 1.0, "ndm:32");
    cfg.oraclePeriod = 128;
    Simulation sim(cfg);
    sim.net().run(2000);
    for (auto _ : state)
        sim.net().step();
}
BENCHMARK(BM_SaturatedWithRecovery);

/**
 * Per-stage cost of the two pipeline phases that dominate a loaded
 * cycle, normalised per flit-hop: VA (routing + output VC
 * allocation, routeAll) and SA (switch allocation + flit transfer,
 * switchAll). Uses the network's own phase timers so the split is
 * measured exactly where step() spends it, not inferred. Reported as
 * va_ns_per_hop / sa_ns_per_hop counters; Arg is the torus radix.
 */
void
BM_PhaseNsPerFlitHop(benchmark::State &state)
{
    const auto radix = static_cast<unsigned>(state.range(0));
    // 1.1x the calibrated 16x16 saturation rate, scaled with radix
    // so every size is driven clearly past its own saturation point.
    Simulation sim(
        baseConfig(radix, 2, 1.1 * 0.45 * 16.0 / radix, "ndm:32"));
    Network &net = sim.net();
    net.run(2000); // settle into steady state
    net.enablePhaseTimers(true);
    net.resetPhaseTimers();

    const Cycle chunk = 200;
    for (auto _ : state)
        net.run(chunk);

    const double hops =
        net.flitHops() > 0 ? double(net.flitHops()) : 1.0;
    state.counters["va_ns_per_hop"] = double(net.vaNanos()) / hops;
    state.counters["sa_ns_per_hop"] = double(net.saNanos()) / hops;
    state.counters["hops_per_cycle"] =
        hops / double(state.iterations() * chunk);
    state.SetItemsProcessed(std::int64_t(hops));
}
BENCHMARK(BM_PhaseNsPerFlitHop)->Arg(8)->Arg(16);

} // namespace

BENCHMARK_MAIN();
