/**
 * @file
 * Ablation: the t1 (I-flag) threshold. The paper fixes t1 to "a very
 * low value (for instance, only one clock cycle)" — the I flag must
 * trip as soon as a channel's occupants stop advancing, because it
 * classifies whether the occupant of a requested channel was already
 * blocked at arrival time. Raising t1 makes blocked occupants look
 * active, turning would-be Propagate flags into Generate and
 * inflating false detections.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const auto opts = bench::parseBenchArgs(argc, argv, "uniform",
                                            /*default_sat=*/0.74);
    const ExperimentRunner runner(
        [](const std::string &) {
            std::fputc('.', stderr);
            std::fflush(stderr);
        },
        opts.jobs);

    const std::vector<Cycle> t1s = {1, 2, 4, 8, 16};
    const std::vector<Cycle> t2s = {32, 64};
    const std::vector<double> fractions = {0.857, 1.10};

    for (const double f : fractions) {
        TextTable table(1 + t2s.size());
        std::vector<std::string> head = {"t1"};
        for (const Cycle t2 : t2s)
            head.push_back("t2=" + std::to_string(t2));
        table.addRow(head);
        table.addSeparator();
        for (const Cycle t1 : t1s) {
            std::vector<std::string> row = {std::to_string(t1)};
            for (const Cycle t2 : t2s) {
                SimulationConfig cfg = opts.base;
                cfg.lengths = "sl";
                cfg.flitRate = f * opts.satRate;
                cfg.detector = "ndm:" + std::to_string(t2) + ":" +
                               std::to_string(t1) + ":selective";
                const CellResult cell =
                    runner.runCell(cfg, opts.warmup, opts.measure);
                row.push_back(
                    formatPercentPaperStyle(cell.detectionRate));
            }
            table.addRow(row);
        }
        std::fputc('\n', stderr);
        std::printf("t1 ablation at %.0f%% of saturation (uniform, "
                    "'sl'):\n%s\n",
                    f * 100, table.render().c_str());
    }
    return 0;
}
