/**
 * @file
 * Head-to-head comparison of the three detection mechanisms (crude
 * timeout, PDM, NDM) across load levels — the paper's headline
 * claim: NDM cuts false detections by ~10x over PDM, and PDM itself
 * improved ~10x over crude timeouts, so NDM improves on raw timeouts
 * by about two orders of magnitude.
 *
 * Rows: mechanism at a fixed common threshold (32); columns: load as
 * a fraction of the saturation rate. A second grid sweeps the
 * threshold at the saturated load.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const auto opts = bench::parseBenchArgs(argc, argv, "uniform",
                                            /*default_sat=*/0.74);
    const ExperimentRunner runner(
        [](const std::string &) {
            std::fputc('.', stderr);
            std::fflush(stderr);
        },
        opts.jobs);

    const std::vector<std::string> mechanisms = {"timeout", "pdm",
                                                 "ndm"};
    const std::vector<double> fractions = {0.714, 0.857, 1.0, 1.10};

    std::printf("Mechanism comparison, uniform traffic, %u-ary "
                "%u-cube, sizes 'sl'\n",
                opts.base.radix, opts.base.dims);
    std::printf("cells: %% of messages detected as deadlocked "
                "(all false positives below saturation)\n\n");

    {
        TextTable table(1 + fractions.size());
        std::vector<std::string> head = {"Th 32 detector"};
        for (const double f : fractions) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.0f%% sat", f * 100);
            head.push_back(buf);
        }
        table.addRow(head);
        table.addSeparator();
        for (const auto &mech : mechanisms) {
            std::vector<std::string> row = {mech};
            for (const double f : fractions) {
                SimulationConfig cfg = opts.base;
                cfg.lengths = "sl";
                cfg.flitRate = f * opts.satRate;
                cfg.detector = mech + ":32";
                const CellResult cell =
                    runner.runCell(cfg, opts.warmup, opts.measure);
                row.push_back(
                    formatPercentPaperStyle(cell.detectionRate));
            }
            table.addRow(row);
        }
        std::fputc('\n', stderr);
        std::printf("%s\n", table.render().c_str());
    }

    // Threshold sweep at the saturated load.
    {
        const std::vector<Cycle> thresholds = {2, 8, 32, 128, 512};
        TextTable table(1 + thresholds.size());
        std::vector<std::string> head = {"saturated load"};
        for (const Cycle th : thresholds)
            head.push_back("Th " + std::to_string(th));
        table.addRow(head);
        table.addSeparator();
        for (const auto &mech : mechanisms) {
            std::vector<std::string> row = {mech};
            for (const Cycle th : thresholds) {
                SimulationConfig cfg = opts.base;
                cfg.lengths = "sl";
                cfg.flitRate = 1.10 * opts.satRate;
                cfg.detector = mech + ":" + std::to_string(th);
                const CellResult cell =
                    runner.runCell(cfg, opts.warmup, opts.measure);
                row.push_back(
                    formatPercentPaperStyle(cell.detectionRate));
            }
            table.addRow(row);
        }
        std::fputc('\n', stderr);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
