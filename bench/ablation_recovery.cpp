/**
 * @file
 * Ablation: recovery scheme. Progressive (software-based absorb-and-
 * deliver) vs. regressive (abort-and-retry) recovery paired with
 * NDM, on a deadlock-prone substrate (single virtual channel, no
 * injection limiter) where true deadlocks actually occur — showing
 * why progressive recovery's non-destructive drain is preferred when
 * detections are frequent, and that both keep the network live.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const auto opts = bench::parseBenchArgs(argc, argv, "uniform",
                                            /*default_sat=*/0.74);
    const ExperimentRunner runner(
        [](const std::string &) {
            std::fputc('.', stderr);
            std::fflush(stderr);
        },
        opts.jobs);

    struct Row
    {
        const char *label;
        const char *recovery;
        unsigned vcs;
        bool limiter;
    };
    const std::vector<Row> rows = {
        // Deadlock-free-ish baseline config (paper's): rare
        // detections, recovery style barely matters.
        {"progressive, 3 VCs", "progressive", 3, true},
        {"regressive,  3 VCs", "regressive", 3, true},
        // Deadlock-prone substrate: recovery style matters.
        {"progressive, 1 VC", "progressive", 1, false},
        {"regressive,  1 VC", "regressive", 1, false},
    };

    TextTable table(5);
    table.addRow({"configuration", "accepted (f/c/n)", "det %",
                  "mean latency", "p99 proxy (max/mean)"});
    table.addSeparator();
    for (const auto &r : rows) {
        SimulationConfig cfg = opts.base;
        cfg.lengths = "s";
        cfg.vcs = r.vcs;
        cfg.injectionLimit = r.limiter;
        cfg.flitRate =
            (r.vcs == 3 ? 0.857 : 0.35) * opts.satRate;
        cfg.detector = "ndm:32";
        cfg.recovery = r.recovery;
        const CellResult cell =
            runner.runCell(cfg, opts.warmup, opts.measure);
        char acc[32], lat[32];
        std::snprintf(acc, sizeof(acc), "%.3f",
                      cell.acceptedFlitRate);
        std::snprintf(lat, sizeof(lat), "%.1f", cell.avgLatency);
        table.addRow({r.label, acc,
                      formatPercentPaperStyle(cell.detectionRate),
                      lat, "-"});
    }
    std::fputc('\n', stderr);
    std::printf("Recovery-scheme ablation (uniform traffic):\n%s\n",
                table.render().c_str());
    return 0;
}
