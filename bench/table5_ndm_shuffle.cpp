/**
 * @file
 * Table 5: NDM detection percentages under the perfect-shuffle
 * permutation (dst = rotate-left-1(src)).
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 5, columns [s, l, sl] per rate group
// (0.214, 0.250, 0.286, 0.320 saturated).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
    {
        // Th 2
        .000, .000, .002, .003, .006, .010,
        .095, .060, .118, .581, .571, .887,
        // Th 4
        .000, .000, .000, .000, .000, .000,
        .020, .010, .020, .292, .177, .304,
        // Th 8
        .000, .000, .000, .000, .000, .000,
        .015, .000, .013, .167, .122, .208,
        // Th 16
        .000, .000, .000, .000, .000, .000,
        .010, .000, .009, .117, .107, .169,
        // Th 32
        .000, .000, .000, .000, .000, .000,
        .000, .000, .006, .073, .090, .124,
        // Th 64
        .000, .000, .000, .000, .000, .000,
        .000, .000, .004, .032, .061, .089,
        // Th 128
        .000, .000, .000, .000, .000, .000,
        .000, .000, .003, .014, .035, .053,
        // Th 256
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .003, .013, .020,
        // Th 512
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .000, .004, .006,
        // Th 1024
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .000, .000, .000,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "shuffle", /*default_sat=*/0.43);
    wormnet::bench::runTableBench(
        "Table 5: NDM, perfect-shuffle traffic", opts, "ndm:%T",
        {"s", "l", "sl"}, &kPaper);
    return 0;
}
