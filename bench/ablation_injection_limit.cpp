/**
 * @file
 * Ablation: the injection-limitation mechanism (López & Duato). The
 * paper's evaluation enables it "to avoid the performance
 * degradation of the network when it reaches saturation and also to
 * decrease the effective deadlock frequency". This bench sweeps the
 * limit threshold (fraction of busy network-output VCs above which a
 * node stops injecting) at a deeply saturated offered load and
 * reports accepted throughput and NDM detection percentage — showing
 * both why the mechanism is needed (without it the detection rate
 * explodes) and how it was tuned (0.4 maximises throughput while
 * keeping detections near the paper's levels).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const auto opts = bench::parseBenchArgs(argc, argv, "uniform",
                                            /*default_sat=*/0.74);
    const ExperimentRunner runner(
        [](const std::string &) {
            std::fputc('.', stderr);
            std::fflush(stderr);
        },
        opts.jobs);

    struct Variant
    {
        const char *label;
        bool enabled;
        double fraction;
    };
    const std::vector<Variant> variants = {
        {"disabled", false, 0.0}, {"0.25", true, 0.25},
        {"0.40 (default)", true, 0.40}, {"0.50", true, 0.50},
        {"0.75", true, 0.75},           {"1.00", true, 1.00},
    };

    TextTable table(4);
    table.addRow({"limit fraction", "accepted (f/c/n)",
                  "NDM Th32 det %", "mean latency"});
    table.addSeparator();
    for (const auto &v : variants) {
        SimulationConfig cfg = opts.base;
        cfg.lengths = "sl";
        cfg.flitRate = 1.5 * opts.satRate; // deep overload
        cfg.detector = "ndm:32";
        cfg.injectionLimit = v.enabled;
        cfg.injectionLimitFraction = v.fraction;
        const CellResult cell =
            runner.runCell(cfg, opts.warmup, opts.measure);
        char acc[32], lat[32];
        std::snprintf(acc, sizeof(acc), "%.3f",
                      cell.acceptedFlitRate);
        std::snprintf(lat, sizeof(lat), "%.1f", cell.avgLatency);
        table.addRow({v.label, acc,
                      formatPercentPaperStyle(cell.detectionRate),
                      lat});
    }
    std::fputc('\n', stderr);
    std::printf("Injection-limitation ablation, offered = 150%% of "
                "saturation (uniform, 'sl'):\n%s\n",
                table.render().c_str());
    return 0;
}
