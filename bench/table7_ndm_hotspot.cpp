/**
 * @file
 * Table 7: NDM detection percentages under the hot-spot pattern (5%
 * of messages target a single node over a uniform background). The
 * paper notes detection percentages rise *before* global saturation
 * because the region around the hot node saturates first; it is also
 * the only pattern where Th 32 exceeds the 0.16% worst case (0.26%).
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 7, columns [s, l, sl] per rate group
// (0.0628, 0.0707, 0.0786, 0.0862 saturated).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
    {
        // Th 2
        .008, .005, .010, .040, .007, .022,
        .140, .110, .120, .506, .442, .422,
        // Th 4
        .003, .002, .006, .035, .003, .018,
        .110, .090, .107, .456, .417, .395,
        // Th 8
        .003, .000, .004, .020, .003, .018,
        .100, .087, .101, .390, .400, .358,
        // Th 16
        .002, .000, .002, .015, .003, .013,
        .065, .077, .083, .320, .377, .335,
        // Th 32
        .001, .000, .001, .000, .003, .007,
        .020, .052, .060, .203, .347, .260,
        // Th 64
        .000, .000, .000, .000, .000, .002,
        .000, .032, .029, .090, .282, .267,
        // Th 128
        .000, .000, .000, .000, .000, .000,
        .000, .007, .010, .035, .167, .077,
        // Th 256
        .000, .000, .000, .000, .000, .000,
        .000, .005, .001, .016, .065, .017,
        // Th 512
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .013, .010, .000,
        // Th 1024
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .005, .002, .000,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "hotspot:0.05", /*default_sat=*/0.71);
    wormnet::bench::runTableBench(
        "Table 7: NDM, hot-spot traffic (5% to one node)", opts,
        "ndm:%T", {"s", "l", "sl"}, &kPaper);
    return 0;
}
