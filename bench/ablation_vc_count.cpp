/**
 * @file
 * Ablation: virtual channels per physical channel. The paper (after
 * Warnakulasuriya & Pinkston) argues deadlocks become rare when
 * sufficient routing freedom exists; this bench sweeps the VC count
 * and reports saturation-relative throughput, NDM detection
 * percentage and oracle-confirmed true deadlocks — deadlock
 * frequency collapses between 1 and 2 VCs and detections keep
 * falling through 4.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const auto opts = bench::parseBenchArgs(argc, argv, "uniform",
                                            /*default_sat=*/0.74);

    TextTable table(5);
    table.addRow({"VCs", "accepted (f/c/n)", "NDM Th32 det %",
                  "true deadlocked msgs", "mean latency"});
    table.addSeparator();
    // Independent sweep points fan out; rows append in sweep order so
    // stdout is identical for every job count.
    const std::vector<unsigned> sweep = {1, 2, 3, 4};
    std::vector<std::vector<std::string>> rows(sweep.size());
    parallelFor(sweep.size(), opts.jobs, [&](std::size_t i) {
        SimulationConfig cfg = opts.base;
        cfg.vcs = sweep[i];
        cfg.lengths = "s";
        cfg.flitRate = 0.857 * opts.satRate;
        cfg.detector = "ndm:32";
        cfg.recovery = "progressive";
        cfg.oraclePeriod = 64;
        Simulation sim(cfg);
        const SimSummary s =
            sim.warmupAndMeasure(opts.warmup, opts.measure);
        std::fputc('.', stderr);
        std::fflush(stderr);
        char acc[32], lat[32];
        std::snprintf(acc, sizeof(acc), "%.3f", s.acceptedFlitRate);
        std::snprintf(lat, sizeof(lat), "%.1f", s.avgLatency);
        rows[i] = {std::to_string(sweep[i]), acc,
                   formatPercentPaperStyle(s.detectionRate),
                   std::to_string(s.trueDeadlockedMessages), lat};
    });
    for (auto &row : rows)
        table.addRow(std::move(row));
    std::fputc('\n', stderr);
    std::printf("Virtual-channel ablation at 86%% of the 3-VC "
                "saturation rate (uniform, 's'):\n%s\n",
                table.render().c_str());
    return 0;
}
