/**
 * @file
 * Strong-scaling benchmark for sharded stepping (--sim-jobs).
 *
 * Sweeps the intra-simulation worker count over {1, 2, 4, 8} on three
 * topologies and reports cycles/sec per point plus the speedup
 * relative to the sequential run:
 *
 *   saturated_32x32       1024-node 2D torus past saturation — the
 *                         switch/routing passes dominate
 *   saturated_8ary3cube   the paper's 512-node 8-ary 3-cube, also
 *                         saturated
 *   64ary3cube_spot       a 262,144-node 64-ary 3-cube at light load
 *                         for a fixed cycle budget — the million-node
 *                         regime where the generation pass is the
 *                         per-cycle floor and per-shard memory
 *                         footprint matters
 *
 * The spot scenario doubles as a determinism assertion: it runs the
 * same fixed budget at every job count and the bench exits nonzero if
 * the delivered-message counts differ (a cheap slice of the bitwise
 * contract tests/test_shard_step.cpp checks exhaustively).
 *
 * Output is JSON including a "host_cores" field so downstream tooling
 * (scripts/perf_gate.py --scaling) can tell real scaling failures
 * apart from oversubscription on small CI hosts: on a 1-core runner a
 * flat curve is the expected result, not a regression.
 *
 *   bench_scaling                       print JSON to stdout
 *   bench_scaling --out FILE            also write FILE
 *   bench_scaling --jobs 1,2,4,8        worker counts to sweep
 *   bench_scaling --min-seconds 0.5     per-point time (timed rows)
 *   bench_scaling --spot-cycles 400     fixed budget for the 262k row
 *   bench_scaling --skip-spot           drop the 262k row entirely
 */

// wormnet-lint: allow-file(banned-api): a benchmark measures wall
// time by design; its timings are reporting, not simulation state.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hh"

namespace
{

using namespace wormnet;
using Clock = std::chrono::steady_clock;

struct Scenario
{
    std::string name;
    unsigned radix;
    unsigned dims;
    double flitRate;
    /** Nonzero: run exactly this many measured cycles instead of
     *  filling --min-seconds (for topologies where a timed loop
     *  would not fit a CI smoke budget). */
    Cycle fixedCycles;
};

struct Point
{
    unsigned jobs = 1;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    std::uint64_t delivered = 0;

    double cyclesPerSec() const
    {
        return seconds > 0.0 ? double(cycles) / seconds : 0.0;
    }
};

struct Curve
{
    std::string name;
    std::uint64_t nodes = 0;
    std::vector<Point> points;
};

Point
runPoint(const Scenario &sc, unsigned jobs, std::uint64_t seed,
         double min_seconds)
{
    SimulationConfig cfg;
    cfg.radix = sc.radix;
    cfg.dims = sc.dims;
    cfg.flitRate = sc.flitRate;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 0; // isolate the per-cycle core
    cfg.seed = seed;
    cfg.simJobs = jobs;

    Simulation sim(cfg);
    const Cycle warmup = sc.fixedCycles ? sc.fixedCycles / 4 : 2000;
    sim.net().run(warmup);
    sim.net().startMeasurement();

    Point p;
    p.jobs = jobs;
    const auto start = Clock::now();
    if (sc.fixedCycles) {
        sim.net().run(sc.fixedCycles);
        p.cycles = sc.fixedCycles;
        p.seconds = std::chrono::duration<double>(Clock::now() -
                                                  start)
                        .count();
    } else {
        const Cycle chunk = 2000;
        double elapsed = 0.0;
        do {
            sim.net().run(chunk);
            p.cycles += chunk;
            elapsed = std::chrono::duration<double>(Clock::now() -
                                                    start)
                          .count();
        } while (elapsed < min_seconds);
        p.seconds = elapsed;
    }
    p.delivered = sim.net().stats().delivered;
    return p;
}

std::string
toJson(const std::vector<Curve> &curves, unsigned host_cores)
{
    std::ostringstream os;
    os << "{\n  \"benchmark\": \"bench_scaling\",\n"
       << "  \"host_cores\": " << host_cores << ",\n"
       << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < curves.size(); ++i) {
        const Curve &c = curves[i];
        const double base = c.points.empty()
                                ? 0.0
                                : c.points.front().cyclesPerSec();
        os << "    {\"name\": \"" << c.name << "\", \"nodes\": "
           << c.nodes << ", \"points\": [\n";
        for (std::size_t j = 0; j < c.points.size(); ++j) {
            const Point &p = c.points[j];
            const double speedup =
                base > 0.0 ? p.cyclesPerSec() / base : 0.0;
            os << "      {\"jobs\": " << p.jobs << ", \"cycles\": "
               << p.cycles << ", \"seconds\": " << p.seconds
               << ", \"cycles_per_sec\": "
               << std::uint64_t(p.cyclesPerSec())
               << ", \"speedup\": " << speedup << "}"
               << (j + 1 < c.points.size() ? "," : "") << "\n";
        }
        os << "    ]}" << (i + 1 < curves.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::vector<unsigned>
parseJobsList(const std::string &spec)
{
    std::vector<unsigned> jobs;
    std::istringstream is(spec);
    std::string tok;
    while (std::getline(is, tok, ','))
        if (!tok.empty())
            jobs.push_back(
                std::max(1u, unsigned(std::stoul(tok))));
    if (jobs.empty())
        jobs.push_back(1);
    return jobs;
}

std::uint64_t
nodeCount(const Scenario &sc)
{
    std::uint64_t n = 1;
    for (unsigned d = 0; d < sc.dims; ++d)
        n *= sc.radix;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 12345;
    double min_seconds = 0.5;
    Cycle spot_cycles = 400;
    bool skip_spot = false;
    std::string jobs_spec = "1,2,4,8";
    std::string out_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out")
            out_file = next();
        else if (arg == "--jobs")
            jobs_spec = next();
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--min-seconds")
            min_seconds = std::stod(next());
        else if (arg == "--spot-cycles")
            spot_cycles = std::stoull(next());
        else if (arg == "--skip-spot")
            skip_spot = true;
        else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    const std::vector<unsigned> jobs = parseJobsList(jobs_spec);

    // Saturation rates match bench_hotpath's calibration; the spot
    // row stays light so the fixed budget finishes inside a CI smoke
    // window even sequentially.
    std::vector<Scenario> scenarios = {
        {"saturated_32x32", 32, 2, 1.1 * 0.45 * 16.0 / 32.0, 0},
        {"saturated_8ary3cube", 8, 3, 0.9, 0},
    };
    if (!skip_spot)
        scenarios.push_back(
            {"64ary3cube_spot", 64, 3, 0.002, spot_cycles});

    int failures = 0;
    std::vector<Curve> curves;
    for (const Scenario &sc : scenarios) {
        Curve c;
        c.name = sc.name;
        c.nodes = nodeCount(sc);
        for (unsigned j : jobs) {
            const Point p = runPoint(sc, j, seed, min_seconds);
            std::fprintf(stderr,
                         "%-22s jobs=%u  %12.0f cyc/s"
                         "  (%llu cycles, %.2fs)\n",
                         sc.name.c_str(), j, p.cyclesPerSec(),
                         static_cast<unsigned long long>(p.cycles),
                         p.seconds);
            c.points.push_back(p);
        }
        // Fixed-budget rows run identical cycle counts at every job
        // count, so delivered-message totals must agree exactly.
        if (sc.fixedCycles) {
            for (const Point &p : c.points) {
                if (p.delivered != c.points.front().delivered) {
                    std::fprintf(
                        stderr,
                        "DETERMINISM FAILURE: %s delivered %llu at "
                        "jobs=%u but %llu at jobs=%u\n",
                        sc.name.c_str(),
                        static_cast<unsigned long long>(p.delivered),
                        p.jobs,
                        static_cast<unsigned long long>(
                            c.points.front().delivered),
                        c.points.front().jobs);
                    ++failures;
                }
            }
        }
        curves.push_back(std::move(c));
    }

    const unsigned host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    const std::string json = toJson(curves, host_cores);
    std::fputs(json.c_str(), stdout);
    if (!out_file.empty()) {
        std::ofstream out(out_file, std::ios::binary);
        out << json;
    }
    return failures == 0 ? 0 : 1;
}
