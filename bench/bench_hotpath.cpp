/**
 * @file
 * Hot-path microbenchmark for the simulation core.
 *
 * Measures raw simulator throughput (cycles/sec) and transport work
 * (flit-hops/sec) on a 16x16 torus at three operating points:
 *
 *   idle      no traffic at all — pure per-cycle bookkeeping cost
 *   low_load  0.1x the saturation flit rate — the regime the paper's
 *             Tables 1-2 spend most of their cycles in
 *   saturated 1.1x the saturation flit rate — worst case for the
 *             activity-driven core (everything is active)
 *
 * plus two saturated scaling points: a 1024-node 32x32 torus and the
 * paper's 512-node 8-ary 3-cube. Every row also reports the process
 * peak RSS so message-store growth regressions show up here.
 *
 * Output is a small JSON document. Modes:
 *
 *   bench_hotpath                          print JSON to stdout
 *   bench_hotpath --out FILE               also write FILE
 *   bench_hotpath --baseline FILE          compare cycles/sec per
 *       [--max-regress 0.30]               scenario against FILE and
 *                                          exit nonzero on a >30%
 *                                          regression
 *   bench_hotpath --repeat N               passes per scenario; the
 *                                          median-throughput pass is
 *                                          reported (default 3)
 *   bench_hotpath --sim-jobs N             sharded-stepping worker
 *                                          count (default 1)
 *
 * The committed baseline (bench/BENCH_hotpath.json) is what the CI
 * perf-smoke step compares against; regenerate it with --out after an
 * intentional performance change on the reference machine.
 */

// wormnet-lint: allow-file(banned-api): a benchmark measures wall
// time by design; its timings are reporting, not simulation state.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"

namespace
{

using namespace wormnet;
using Clock = std::chrono::steady_clock;

struct Scenario
{
    std::string name;
    unsigned radix;
    unsigned dims;
    double flitRate;
};

struct Result
{
    std::string name;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    std::uint64_t flitHops = 0;
    /** Process peak RSS after this scenario, MB (monotone across
     *  scenarios — growth between rows is what matters). */
    std::uint64_t peakRssMb = 0;

    double cyclesPerSec() const
    {
        return seconds > 0.0 ? double(cycles) / seconds : 0.0;
    }
    double hopsPerSec() const
    {
        return seconds > 0.0 ? double(flitHops) / seconds : 0.0;
    }
};

std::uint64_t
totalFlitHops(const Network &net)
{
    std::uint64_t hops = 0;
    for (NodeId node = 0; node < net.numNodes(); ++node) {
        for (PortId q = 0; q < net.routerParams().numOutPorts(); ++q)
            hops += net.channelTxCount(node, q);
    }
    return hops;
}

Result
runScenarioOnce(const Scenario &sc, std::uint64_t seed,
                double min_seconds, unsigned sim_jobs)
{
    SimulationConfig cfg;
    cfg.radix = sc.radix;
    cfg.dims = sc.dims;
    cfg.flitRate = sc.flitRate;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 0; // isolate the per-cycle core
    cfg.seed = seed;
    cfg.simJobs = sim_jobs;

    Simulation sim(cfg);
    sim.net().run(2000); // settle into steady state
    sim.net().startMeasurement();

    Result r;
    r.name = sc.name;
    const Cycle chunk = 2000;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        sim.net().run(chunk);
        r.cycles += chunk;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    r.seconds = elapsed;
    r.flitHops = totalFlitHops(sim.net());
    sim.net().stats().samplePeakRss();
    r.peakRssMb = sim.net().stats().peakRssBytes >> 20;
    return r;
}

/**
 * Repeat the scenario and keep the median-throughput pass. Single
 * passes on saturated scenarios vary up to ~1.9x on noisy shared
 * machines (see results/hotpath_pr8.md); the median of three is what
 * the perf gate compares, which is what makes its per-scenario
 * tolerances meaningful.
 */
Result
runScenario(const Scenario &sc, std::uint64_t seed,
            double min_seconds, unsigned repeat, unsigned sim_jobs)
{
    std::vector<Result> passes;
    for (unsigned i = 0; i < repeat; ++i)
        passes.push_back(
            runScenarioOnce(sc, seed, min_seconds, sim_jobs));
    std::sort(passes.begin(), passes.end(),
              [](const Result &a, const Result &b) {
                  return a.cyclesPerSec() < b.cyclesPerSec();
              });
    return passes[passes.size() / 2];
}

std::string
toJson(const std::vector<Result> &results)
{
    std::ostringstream os;
    os << "{\n  \"benchmark\": \"bench_hotpath\",\n"
       << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        os << "    {\"name\": \"" << r.name << "\", \"cycles\": "
           << r.cycles << ", \"seconds\": " << r.seconds
           << ", \"cycles_per_sec\": " << std::uint64_t(r.cyclesPerSec())
           << ", \"flit_hops\": " << r.flitHops
           << ", \"flit_hops_per_sec\": "
           << std::uint64_t(r.hopsPerSec())
           << ", \"peak_rss_mb\": " << r.peakRssMb << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

/** Pull "name": <scenario> / "cycles_per_sec": <value> pairs out of a
 *  baseline file written by toJson (not a general JSON parser). */
bool
baselineCyclesPerSec(const std::string &content,
                     const std::string &scenario, double &out)
{
    const std::string tag = "\"name\": \"" + scenario + "\"";
    auto pos = content.find(tag);
    if (pos == std::string::npos)
        return false;
    const std::string key = "\"cycles_per_sec\": ";
    pos = content.find(key, pos);
    if (pos == std::string::npos)
        return false;
    out = std::strtod(content.c_str() + pos + key.size(), nullptr);
    return out > 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned radix = 16;
    std::uint64_t seed = 12345;
    double min_seconds = 0.5;
    double max_regress = 0.30;
    double sat_rate = 0.45; // calibrated uniform sat on a 16x16 torus
    unsigned repeat = 3;
    unsigned sim_jobs = 1;
    std::string out_file;
    std::string baseline_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out")
            out_file = next();
        else if (arg == "--baseline")
            baseline_file = next();
        else if (arg == "--max-regress")
            max_regress = std::stod(next());
        else if (arg == "--radix")
            radix = unsigned(std::stoul(next()));
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--min-seconds")
            min_seconds = std::stod(next());
        else if (arg == "--sat")
            sat_rate = std::stod(next());
        else if (arg == "--repeat")
            repeat = std::max(1u, unsigned(std::stoul(next())));
        else if (arg == "--sim-jobs")
            sim_jobs = std::max(1u, unsigned(std::stoul(next())));
        else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    // Saturation scales roughly with dims/radix on a uniform torus;
    // 0.45 is the measured 16x16 value, the larger topologies just
    // need to be driven clearly past their own saturation point.
    const double sat_32 = sat_rate * 16.0 / 32.0;
    const std::vector<Scenario> scenarios = {
        {"idle_16x16", radix, 2, 0.0},
        {"low_load_16x16", radix, 2, 0.1 * sat_rate},
        {"saturated_16x16", radix, 2, 1.1 * sat_rate},
        // Scaling points: a 1024-node 2D torus and the paper's
        // 512-node 8-ary 3-cube, both saturated.
        {"saturated_32x32", 32, 2, 1.1 * sat_32},
        {"saturated_8ary3cube", 8, 3, 0.9},
    };

    std::vector<Result> results;
    for (const Scenario &sc : scenarios)
        results.push_back(
            runScenario(sc, seed, min_seconds, repeat, sim_jobs));

    const std::string json = toJson(results);
    std::fputs(json.c_str(), stdout);
    if (!out_file.empty()) {
        std::ofstream out(out_file, std::ios::binary);
        out << json;
    }

    if (baseline_file.empty())
        return 0;

    std::ifstream in(baseline_file, std::ios::binary);
    if (!in.good()) {
        std::fprintf(stderr, "cannot read baseline %s\n",
                     baseline_file.c_str());
        return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string base = ss.str();

    int failures = 0;
    for (const Result &r : results) {
        double ref = 0.0;
        if (!baselineCyclesPerSec(base, r.name, ref)) {
            std::fprintf(stderr,
                         "baseline has no scenario '%s'; skipping\n",
                         r.name.c_str());
            continue;
        }
        const double ratio = r.cyclesPerSec() / ref;
        std::fprintf(stderr, "%-18s %12.0f cyc/s vs baseline %12.0f"
                             "  (%.2fx)\n",
                     r.name.c_str(), r.cyclesPerSec(), ref, ratio);
        if (ratio < 1.0 - max_regress) {
            std::fprintf(stderr,
                         "REGRESSION: %s is %.0f%% below baseline "
                         "(limit %.0f%%)\n",
                         r.name.c_str(), (1.0 - ratio) * 100.0,
                         max_regress * 100.0);
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
