/**
 * @file
 * Ablation: the t2 trade-off the paper's tuning discussion is about.
 * On a deadlock-prone substrate (single virtual channel, no
 * injection limiter) where true deadlocks actually form, sweep t2
 * and report both sides of the trade:
 *
 *  - false positives (detections the oracle refutes);
 *  - detection latency of true deadlocks (cycles from the oracle
 *    first seeing a message deadlocked to its detection, quantised
 *    by the oracle period).
 *
 * The paper argues a low constant t2 is safe for NDM because the DT
 * counters measure time since the last transmission: once the tree
 * root blocks, the threshold is reached "at once" — so latency grows
 * roughly linearly in t2 while NDM's false positives stay low, and
 * the knee is where to operate.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;
    const Config cli = Config::parseArgs(argc - 1, argv + 1);
    const Cycle warmup = cli.getUint("warmup", 1000);
    const Cycle measure = cli.getUint("measure", 12000);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));

    TextTable table(6);
    table.addRow({"t2", "true deadlocked", "detections",
                  "false det %", "mean det latency",
                  "max persistence"});
    table.addSeparator();

    // The t2 sweep points are independent simulations: fan them out
    // and append the rows in sweep order so stdout is identical for
    // every job count.
    const std::vector<Cycle> sweep = {4, 8, 16, 32, 64, 128, 256};
    std::vector<std::vector<std::string>> rows(sweep.size());
    parallelFor(sweep.size(), jobs, [&](std::size_t i) {
        const Cycle t2 = sweep[i];
        SimulationConfig cfg;
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.vcs = 1; // deadlock-prone substrate
        cfg.lengths = "s";
        cfg.flitRate = 0.30;
        cfg.detector = "ndm:" + std::to_string(t2);
        cfg.recovery = "progressive";
        cfg.injectionLimit = false;
        cfg.oraclePeriod = 8;
        cfg.seed = cli.getUint("seed", 5);
        Simulation sim(cfg);
        sim.net().run(warmup);
        sim.net().startMeasurement();
        sim.net().run(measure);

        const SimStats &s = sim.net().stats();
        char lat[32], pers[32], fd[32];
        std::snprintf(lat, sizeof(lat), "%.0f",
                      s.detectionLatency.mean());
        std::snprintf(pers, sizeof(pers), "%llu",
                      static_cast<unsigned long long>(
                          s.maxDeadlockPersistence));
        std::snprintf(
            fd, sizeof(fd), "%s",
            formatPercentPaperStyle(
                s.wDelivered
                    ? double(s.wFalseDetections) / s.wDelivered
                    : 0.0)
                .c_str());
        rows[i] = {std::to_string(t2),
                   std::to_string(s.trueDeadlockedMessages),
                   std::to_string(s.wDetectionEvents), fd, lat,
                   pers};
        std::fputc('.', stderr);
        std::fflush(stderr);
    });
    for (auto &row : rows)
        table.addRow(std::move(row));
    std::fputc('\n', stderr);
    std::printf("t2 trade-off on a deadlock-prone substrate "
                "(8x8 torus, 1 VC, no limiter, uniform 's', "
                "rate 0.30):\n%s\n"
                "Reading: the detector and the substrate feed back "
                "on each other.\nVery small t2 recovers congestion "
                "before deadlocks can even form\n(persistence 0); "
                "moderate t2 detects true deadlocks with latency on\n"
                "the order of t2; large t2 lets many more deadlocks "
                "form and linger.\nDetection latency stays within a "
                "small factor of t2 throughout,\nsupporting the "
                "paper's case for a low constant threshold.\n",
                table.render().c_str());
    return 0;
}
