/**
 * @file
 * Table 4: NDM detection percentages under the bit-reversal
 * permutation (dst = bit-reverse(src)). A low-bisection adversarial
 * pattern: saturation arrives at much lower loads than uniform, but
 * the NDM threshold behaviour is unchanged — the paper's
 * pattern-insensitivity claim.
 */

#include "bench_util.hh"

namespace
{

using wormnet::bench::PaperRef;

// Paper Table 4, columns [s, l, sl] per rate group
// (0.352, 0.386, 0.421, 0.451 saturated).
const PaperRef kPaper = {
    {2, 4, 8, 16, 32, 64, 128, 256},
    {
        // Th 2
        .004, .006, .013, .011, .013, .065,
        .129, .041, .292, .638, .346, 1.14,
        // Th 4
        .001, .000, .003, .001, .001, .005,
        .024, .000, .041, .148, .038, .223,
        // Th 8
        .000, .000, .000, .000, .000, .002,
        .003, .000, .012, .041, .005, .090,
        // Th 16
        .000, .000, .000, .000, .000, .002,
        .001, .000, .009, .026, .004, .070,
        // Th 32
        .000, .000, .000, .000, .000, .002,
        .001, .000, .007, .009, .001, .043,
        // Th 64
        .000, .000, .000, .000, .000, .001,
        .000, .000, .003, .002, .000, .019,
        // Th 128
        .000, .000, .000, .000, .000, .000,
        .000, .000, .001, .000, .000, .002,
        // Th 256
        .000, .000, .000, .000, .000, .000,
        .000, .000, .000, .000, .000, .000,
    },
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = wormnet::bench::parseBenchArgs(
        argc, argv, "bitrev", /*default_sat=*/0.63);
    wormnet::bench::runTableBench(
        "Table 4: NDM, bit-reversal traffic", opts, "ndm:%T",
        {"s", "l", "sl"}, &kPaper);
    return 0;
}
