/**
 * @file
 * Ablation: stochastic link-fault rate. Sweeps the per-link per-cycle
 * failure probability (with self-repair, i.e. transient faults) on
 * the default 8x8 torus under moderate uniform load and reports, as a
 * JSON array on stdout, the fraction of non-abandoned messages that
 * were delivered and the oracle-labelled false-positive rate of the
 * NDM — demonstrating that fault-aware detection does not degenerate
 * into a false-deadlock storm when links die, and that bounded-retry
 * recovery keeps delivering what can still be delivered.
 *
 * Options:
 *   --rates p1,p2,...   fault rates to sweep (default 0,1e-6,1e-5,1e-4)
 *   --repair N          self-repair delay in cycles (default 200)
 *   --load r            offered load in flits/cycle/node (default 0.2)
 *   --warmup/--measure/--drain N
 *   --quick             small cycle counts (CI smoke run)
 *   --jobs N            worker threads (0 = WORMNET_JOBS env, else
 *                       hardware concurrency); the JSON on stdout is
 *                       identical for every value
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    using namespace wormnet;

    Cycle warmup = 2000;
    Cycle measure = 10000;
    Cycle drain = 8000;
    Cycle repair = 200;
    double load = 0.2;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    std::vector<double> rates = {0.0, 1e-6, 1e-5, 1e-4};

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            warmup = 500;
            measure = 2000;
            drain = 3000;
        } else if (arg == "--rates") {
            rates.clear();
            std::string list = next();
            for (char *tok = std::strtok(list.data(), ",");
                 tok != nullptr; tok = std::strtok(nullptr, ","))
                rates.push_back(std::strtod(tok, nullptr));
        } else if (arg == "--repair") {
            repair = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--load") {
            load = std::strtod(next(), nullptr);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--measure") {
            measure = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--drain") {
            drain = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 1;
        }
    }

    // The rate sweep points are independent simulations: run them
    // concurrently into per-rate slots and emit the JSON array in
    // sweep order afterwards, so stdout is identical for every job
    // count.
    std::vector<std::string> entries(rates.size());
    parallelFor(rates.size(), jobs, [&](std::size_t i) {
        const double rate = rates[i];

        SimulationConfig cfg;
        cfg.topology = "torus";
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.flitRate = load;
        cfg.detector = "ndm:32";
        cfg.recovery = "regressive:16";
        cfg.oraclePeriod = 128;
        cfg.seed = seed;
        if (rate > 0.0) {
            char spec[48];
            std::snprintf(spec, sizeof(spec), "rate:%g", rate);
            cfg.faults = spec;
            cfg.faultRepair = repair;
        }

        Simulation sim(cfg);
        Network &net = sim.net();
        net.run(warmup);
        net.startMeasurement();
        net.run(measure);

        // Drain: stop offering load and let in-flight and queued
        // messages finish (transient faults keep firing and healing
        // meanwhile, so retries eventually get through).
        net.setFlitRate(0.0);
        Cycle drained = 0;
        while ((net.inFlight() > 0 || net.totalQueued() > 0) &&
               drained < drain) {
            net.run(100);
            drained += 100;
        }

        const SimStats &s = net.stats();
        const std::uint64_t nonAbandoned =
            s.generated > s.abandoned ? s.generated - s.abandoned : 0;
        const double deliveredFraction =
            nonAbandoned == 0
                ? 1.0
                : double(s.delivered) / double(nonAbandoned);
        const double fpRate =
            s.wDelivered == 0 ? 0.0
                              : double(s.wFalseDetections) /
                                    double(s.wDelivered);

        char entry[1024];
        std::snprintf(
            entry, sizeof(entry),
            "  {\"fault_rate\": %g, \"repair_delay\": %llu,\n"
            "   \"generated\": %llu, \"delivered\": %llu, "
            "\"abandoned\": %llu,\n"
            "   \"faults_injected\": %llu, \"faults_repaired\": "
            "%llu,\n"
            "   \"fault_kills\": %llu, \"fault_reroutes\": %llu,\n"
            "   \"delivered_fraction\": %.6f, "
            "\"false_positives\": %llu,\n"
            "   \"false_positive_rate\": %.6f, "
            "\"detections\": %llu,\n"
            "   \"in_flight_end\": %zu, \"queued_end\": %zu}%s\n",
            rate, (unsigned long long)repair,
            (unsigned long long)s.generated,
            (unsigned long long)s.delivered,
            (unsigned long long)s.abandoned,
            (unsigned long long)s.faultsInjected,
            (unsigned long long)s.faultsRepaired,
            (unsigned long long)s.faultKills,
            (unsigned long long)s.faultReroutes, deliveredFraction,
            (unsigned long long)s.wFalseDetections, fpRate,
            (unsigned long long)s.detections, net.inFlight(),
            net.totalQueued(), i + 1 < rates.size() ? "," : "");
        entries[i] = entry;
    });

    std::printf("[\n");
    for (const std::string &entry : entries)
        std::fputs(entry.c_str(), stdout);
    std::printf("]\n");
    return 0;
}
