#include "bench_util.hh"

#include <cstdio>
#include <sstream>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/table.hh"

namespace wormnet
{
namespace bench
{

BenchOptions
parseBenchArgs(int argc, char **argv, const std::string &pattern,
               double default_sat)
{
    const Config cli = Config::parseArgs(argc - 1, argv + 1);

    BenchOptions opts;
    opts.base = SimulationConfig::fromConfig(cli);
    opts.base.pattern = cli.getString("pattern", pattern);
    opts.csv = cli.getBool("csv", false);
    opts.quiet = cli.getBool("quiet", false);

    const bool quick = cli.getBool("quick", false);
    const bool full = cli.getBool("full", false);
    if (quick && full)
        fatal("--quick and --full are mutually exclusive");

    if (full) {
        // The paper's testbed: 8-ary 3-cube, full threshold sweep.
        if (!cli.has("radix"))
            opts.base.radix = 8;
        if (!cli.has("dims"))
            opts.base.dims = 3;
        opts.thresholds = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
        opts.warmup = 4000;
        opts.measure = 20000;
    } else if (quick) {
        opts.thresholds = {2, 16, 128};
        opts.warmup = 1000;
        opts.measure = 4000;
    } else {
        opts.thresholds = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
        opts.warmup = 2500;
        opts.measure = 10000;
    }
    opts.warmup = cli.getUint("warmup", opts.warmup);
    opts.measure = cli.getUint("measure", opts.measure);
    opts.replications =
        static_cast<unsigned>(cli.getUint("seeds", 1));
    if (opts.replications < 1)
        fatal("--seeds must be >= 1");
    opts.jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    opts.checkpoint = cli.getString("checkpoint", opts.checkpoint);
    opts.checkpointEvery = static_cast<unsigned>(
        cli.getUint("checkpoint-every", opts.checkpointEvery));
    opts.resume = cli.getString("resume", opts.resume);

    opts.satRate = cli.getDouble("sat", default_sat);
    // The baked-in saturation defaults were calibrated on the
    // default 8-ary 2-cube; any other shape needs re-calibration.
    const bool nondefault_shape =
        opts.base.radix != 8 || opts.base.dims != 2;
    if (cli.getBool("calibrate", false) || opts.satRate <= 0.0 ||
        (nondefault_shape && !cli.has("sat"))) {
        std::fprintf(stderr, "calibrating saturation rate for %s...\n",
                     opts.base.pattern.c_str());
        SimulationConfig probe = opts.base;
        probe.detector = "ndm:32";
        probe.lengths = "s";
        const ExperimentRunner runner({}, opts.jobs);
        opts.satRate = runner.findSaturationRate(
            probe, 0.02, opts.base.injPorts * 1.0);
        std::fprintf(stderr, "saturation ~= %.4f flits/cycle/node\n",
                     opts.satRate);
    }
    return opts;
}

void
runTableBench(const std::string &title, const BenchOptions &opts,
              const std::string &detector_template,
              const std::vector<std::string> &size_classes,
              const PaperRef *paper)
{
    TableSpec spec;
    spec.title = title;
    spec.base = opts.base;
    spec.detectorTemplate = detector_template;
    spec.thresholds = opts.thresholds;
    spec.sizeClasses = size_classes;
    spec.warmup = opts.warmup;
    spec.measure = opts.measure;
    spec.replications = opts.replications;
    for (std::size_t i = 0; i < opts.loadFractions.size(); ++i) {
        const double rate = opts.loadFractions[i] * opts.satRate;
        spec.rates.push_back(rate);
        std::ostringstream os;
        os.precision(3);
        os << rate;
        if (i + 1 == opts.loadFractions.size())
            os << " (saturated)";
        spec.rateLabels.push_back(os.str());
    }

    ExperimentRunner::Progress progress;
    if (!opts.quiet) {
        progress = [](const std::string &) {
            std::fputc('.', stderr);
            std::fflush(stderr);
        };
    }
    ExperimentRunner runner(progress, opts.jobs);
    if (!opts.checkpoint.empty())
        runner.setCheckpoint(opts.checkpoint, opts.checkpointEvery);
    if (!opts.resume.empty())
        runner.setResume(opts.resume);
    const TableResult result = runner.runTable(spec);
    if (!opts.quiet)
        std::fputc('\n', stderr);

    // Timing goes to stderr so stdout (table/CSV) stays
    // bitwise-identical across job counts.
    if (!opts.quiet) {
        const unsigned jobs =
            opts.jobs != 0 ? opts.jobs : defaultJobs();
        std::fprintf(stderr,
                     "jobs: %u  wall: %.2fs  sim time: %.2fs  "
                     "speedup: %.2fx\n",
                     jobs, result.wallSeconds, result.busySeconds,
                     result.wallSeconds > 0.0
                         ? result.busySeconds / result.wallSeconds
                         : 0.0);
    }

    // Render: measured value, then the paper's value in parentheses
    // when the paper reports this (threshold, rate, size) point.
    const std::size_t sizes = size_classes.size();
    TextTable table(1 + spec.rates.size() * sizes);
    {
        std::vector<std::string> row(table.numColumns());
        row[0] = "";
        for (std::size_t r = 0; r < spec.rates.size(); ++r)
            row[1 + r * sizes] = spec.rateLabels[r];
        table.addRow(std::move(row));
    }
    {
        std::vector<std::string> row(table.numColumns());
        row[0] = "M. Size";
        for (std::size_t r = 0; r < spec.rates.size(); ++r) {
            for (std::size_t s = 0; s < sizes; ++s) {
                bool starred = false;
                for (const auto &cell : result.cells[r][s])
                    starred |= cell.sawTrueDeadlock;
                row[1 + r * sizes + s] =
                    size_classes[s] + (starred ? " (*)" : "");
            }
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();

    for (std::size_t t = 0; t < spec.thresholds.size(); ++t) {
        std::vector<std::string> row(table.numColumns());
        {
            std::ostringstream os;
            os << "Th " << spec.thresholds[t];
            row[0] = os.str();
        }
        // Paper row for this threshold, if reported.
        std::ptrdiff_t paper_row = -1;
        if (paper) {
            for (std::size_t pt = 0; pt < paper->thresholds.size();
                 ++pt) {
                if (paper->thresholds[pt] == spec.thresholds[t]) {
                    paper_row = static_cast<std::ptrdiff_t>(pt);
                    break;
                }
            }
        }
        for (std::size_t r = 0; r < spec.rates.size(); ++r) {
            for (std::size_t s = 0; s < sizes; ++s) {
                const CellResult &cell = result.cells[r][s][t];
                std::string text =
                    formatPercentPaperStyle(cell.detectionRate);
                if (paper_row >= 0) {
                    const double ref =
                        paper->values[paper_row * spec.rates.size() *
                                          sizes +
                                      r * sizes + s];
                    if (ref >= 0.0)
                        text += " (" +
                                formatPercentPaperStyle(ref / 100.0) +
                                ")";
                }
                row[1 + r * sizes + s] = std::move(text);
            }
        }
        table.addRow(std::move(row));
    }

    std::printf("%s\n", title.c_str());
    std::printf("network: %u-ary %u-%s, %u VCs, routing %s, "
                "recovery %s, pattern %s\n",
                opts.base.radix, opts.base.dims,
                opts.base.topology.c_str(), opts.base.vcs,
                opts.base.routing.c_str(), opts.base.recovery.c_str(),
                opts.base.pattern.c_str());
    std::printf("cells: measured %% of messages detected as "
                "deadlocked%s\n\n",
                paper ? " (paper's value)" : "");
    std::printf("%s\n", table.render().c_str());
    if (opts.csv)
        std::printf("CSV:\n%s\n", table.renderCsv().c_str());
}

} // namespace bench
} // namespace wormnet
