# Empty dependencies file for figure_scenarios.
# This may be replaced when dependencies are built.
