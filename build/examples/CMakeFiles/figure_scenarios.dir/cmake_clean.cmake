file(REMOVE_RECURSE
  "CMakeFiles/figure_scenarios.dir/figure_scenarios.cpp.o"
  "CMakeFiles/figure_scenarios.dir/figure_scenarios.cpp.o.d"
  "figure_scenarios"
  "figure_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
