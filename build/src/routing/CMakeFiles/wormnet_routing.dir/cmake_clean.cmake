file(REMOVE_RECURSE
  "CMakeFiles/wormnet_routing.dir/routing.cc.o"
  "CMakeFiles/wormnet_routing.dir/routing.cc.o.d"
  "libwormnet_routing.a"
  "libwormnet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
