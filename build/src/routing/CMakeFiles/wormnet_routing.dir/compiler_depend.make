# Empty compiler generated dependencies file for wormnet_routing.
# This may be replaced when dependencies are built.
