file(REMOVE_RECURSE
  "libwormnet_routing.a"
)
