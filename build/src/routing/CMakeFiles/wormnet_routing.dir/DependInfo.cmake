
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/routing.cc" "src/routing/CMakeFiles/wormnet_routing.dir/routing.cc.o" "gcc" "src/routing/CMakeFiles/wormnet_routing.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/wormnet_router.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wormnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wormnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
