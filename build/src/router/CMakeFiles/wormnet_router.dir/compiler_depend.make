# Empty compiler generated dependencies file for wormnet_router.
# This may be replaced when dependencies are built.
