file(REMOVE_RECURSE
  "libwormnet_router.a"
)
