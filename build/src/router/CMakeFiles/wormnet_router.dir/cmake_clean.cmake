file(REMOVE_RECURSE
  "CMakeFiles/wormnet_router.dir/router.cc.o"
  "CMakeFiles/wormnet_router.dir/router.cc.o.d"
  "libwormnet_router.a"
  "libwormnet_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
