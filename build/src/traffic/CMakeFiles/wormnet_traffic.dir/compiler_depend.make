# Empty compiler generated dependencies file for wormnet_traffic.
# This may be replaced when dependencies are built.
