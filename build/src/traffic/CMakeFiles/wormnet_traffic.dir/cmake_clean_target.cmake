file(REMOVE_RECURSE
  "libwormnet_traffic.a"
)
