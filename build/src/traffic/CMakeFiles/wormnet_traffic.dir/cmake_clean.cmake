file(REMOVE_RECURSE
  "CMakeFiles/wormnet_traffic.dir/generator.cc.o"
  "CMakeFiles/wormnet_traffic.dir/generator.cc.o.d"
  "CMakeFiles/wormnet_traffic.dir/length.cc.o"
  "CMakeFiles/wormnet_traffic.dir/length.cc.o.d"
  "CMakeFiles/wormnet_traffic.dir/pattern.cc.o"
  "CMakeFiles/wormnet_traffic.dir/pattern.cc.o.d"
  "libwormnet_traffic.a"
  "libwormnet_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
