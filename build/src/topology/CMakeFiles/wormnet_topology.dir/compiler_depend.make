# Empty compiler generated dependencies file for wormnet_topology.
# This may be replaced when dependencies are built.
