file(REMOVE_RECURSE
  "libwormnet_topology.a"
)
