file(REMOVE_RECURSE
  "CMakeFiles/wormnet_topology.dir/mesh.cc.o"
  "CMakeFiles/wormnet_topology.dir/mesh.cc.o.d"
  "CMakeFiles/wormnet_topology.dir/mixed_torus.cc.o"
  "CMakeFiles/wormnet_topology.dir/mixed_torus.cc.o.d"
  "CMakeFiles/wormnet_topology.dir/topology.cc.o"
  "CMakeFiles/wormnet_topology.dir/topology.cc.o.d"
  "CMakeFiles/wormnet_topology.dir/torus.cc.o"
  "CMakeFiles/wormnet_topology.dir/torus.cc.o.d"
  "libwormnet_topology.a"
  "libwormnet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
