file(REMOVE_RECURSE
  "CMakeFiles/wormnet_sim.dir/network.cc.o"
  "CMakeFiles/wormnet_sim.dir/network.cc.o.d"
  "CMakeFiles/wormnet_sim.dir/oracle.cc.o"
  "CMakeFiles/wormnet_sim.dir/oracle.cc.o.d"
  "CMakeFiles/wormnet_sim.dir/trace.cc.o"
  "CMakeFiles/wormnet_sim.dir/trace.cc.o.d"
  "CMakeFiles/wormnet_sim.dir/validate.cc.o"
  "CMakeFiles/wormnet_sim.dir/validate.cc.o.d"
  "libwormnet_sim.a"
  "libwormnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
