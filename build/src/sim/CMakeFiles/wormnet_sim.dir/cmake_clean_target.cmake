file(REMOVE_RECURSE
  "libwormnet_sim.a"
)
