# Empty compiler generated dependencies file for wormnet_sim.
# This may be replaced when dependencies are built.
