file(REMOVE_RECURSE
  "libwormnet_recovery.a"
)
