# Empty dependencies file for wormnet_recovery.
# This may be replaced when dependencies are built.
