file(REMOVE_RECURSE
  "CMakeFiles/wormnet_recovery.dir/disha.cc.o"
  "CMakeFiles/wormnet_recovery.dir/disha.cc.o.d"
  "CMakeFiles/wormnet_recovery.dir/factory.cc.o"
  "CMakeFiles/wormnet_recovery.dir/factory.cc.o.d"
  "CMakeFiles/wormnet_recovery.dir/progressive.cc.o"
  "CMakeFiles/wormnet_recovery.dir/progressive.cc.o.d"
  "CMakeFiles/wormnet_recovery.dir/regressive.cc.o"
  "CMakeFiles/wormnet_recovery.dir/regressive.cc.o.d"
  "libwormnet_recovery.a"
  "libwormnet_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
