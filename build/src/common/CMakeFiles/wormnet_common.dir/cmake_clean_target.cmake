file(REMOVE_RECURSE
  "libwormnet_common.a"
)
