file(REMOVE_RECURSE
  "CMakeFiles/wormnet_common.dir/config.cc.o"
  "CMakeFiles/wormnet_common.dir/config.cc.o.d"
  "CMakeFiles/wormnet_common.dir/log.cc.o"
  "CMakeFiles/wormnet_common.dir/log.cc.o.d"
  "CMakeFiles/wormnet_common.dir/rng.cc.o"
  "CMakeFiles/wormnet_common.dir/rng.cc.o.d"
  "CMakeFiles/wormnet_common.dir/stats.cc.o"
  "CMakeFiles/wormnet_common.dir/stats.cc.o.d"
  "CMakeFiles/wormnet_common.dir/table.cc.o"
  "CMakeFiles/wormnet_common.dir/table.cc.o.d"
  "libwormnet_common.a"
  "libwormnet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
