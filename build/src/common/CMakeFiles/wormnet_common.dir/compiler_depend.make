# Empty compiler generated dependencies file for wormnet_common.
# This may be replaced when dependencies are built.
