
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detection/detector.cc" "src/detection/CMakeFiles/wormnet_detection.dir/detector.cc.o" "gcc" "src/detection/CMakeFiles/wormnet_detection.dir/detector.cc.o.d"
  "/root/repo/src/detection/ndm.cc" "src/detection/CMakeFiles/wormnet_detection.dir/ndm.cc.o" "gcc" "src/detection/CMakeFiles/wormnet_detection.dir/ndm.cc.o.d"
  "/root/repo/src/detection/pdm.cc" "src/detection/CMakeFiles/wormnet_detection.dir/pdm.cc.o" "gcc" "src/detection/CMakeFiles/wormnet_detection.dir/pdm.cc.o.d"
  "/root/repo/src/detection/source_timeout.cc" "src/detection/CMakeFiles/wormnet_detection.dir/source_timeout.cc.o" "gcc" "src/detection/CMakeFiles/wormnet_detection.dir/source_timeout.cc.o.d"
  "/root/repo/src/detection/timeout.cc" "src/detection/CMakeFiles/wormnet_detection.dir/timeout.cc.o" "gcc" "src/detection/CMakeFiles/wormnet_detection.dir/timeout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wormnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
