file(REMOVE_RECURSE
  "CMakeFiles/wormnet_detection.dir/detector.cc.o"
  "CMakeFiles/wormnet_detection.dir/detector.cc.o.d"
  "CMakeFiles/wormnet_detection.dir/ndm.cc.o"
  "CMakeFiles/wormnet_detection.dir/ndm.cc.o.d"
  "CMakeFiles/wormnet_detection.dir/pdm.cc.o"
  "CMakeFiles/wormnet_detection.dir/pdm.cc.o.d"
  "CMakeFiles/wormnet_detection.dir/source_timeout.cc.o"
  "CMakeFiles/wormnet_detection.dir/source_timeout.cc.o.d"
  "CMakeFiles/wormnet_detection.dir/timeout.cc.o"
  "CMakeFiles/wormnet_detection.dir/timeout.cc.o.d"
  "libwormnet_detection.a"
  "libwormnet_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
