file(REMOVE_RECURSE
  "libwormnet_detection.a"
)
