# Empty dependencies file for wormnet_detection.
# This may be replaced when dependencies are built.
