file(REMOVE_RECURSE
  "libwormnet_core.a"
)
