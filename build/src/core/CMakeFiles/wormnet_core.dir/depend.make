# Empty dependencies file for wormnet_core.
# This may be replaced when dependencies are built.
