file(REMOVE_RECURSE
  "CMakeFiles/wormnet_core.dir/experiment.cc.o"
  "CMakeFiles/wormnet_core.dir/experiment.cc.o.d"
  "CMakeFiles/wormnet_core.dir/report.cc.o"
  "CMakeFiles/wormnet_core.dir/report.cc.o.d"
  "CMakeFiles/wormnet_core.dir/simulation.cc.o"
  "CMakeFiles/wormnet_core.dir/simulation.cc.o.d"
  "libwormnet_core.a"
  "libwormnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
