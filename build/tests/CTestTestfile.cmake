# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_router[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_detection[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_paper_figures[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
