file(REMOVE_RECURSE
  "CMakeFiles/table2_ndm_uniform.dir/bench_util.cc.o"
  "CMakeFiles/table2_ndm_uniform.dir/bench_util.cc.o.d"
  "CMakeFiles/table2_ndm_uniform.dir/table2_ndm_uniform.cpp.o"
  "CMakeFiles/table2_ndm_uniform.dir/table2_ndm_uniform.cpp.o.d"
  "table2_ndm_uniform"
  "table2_ndm_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ndm_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
