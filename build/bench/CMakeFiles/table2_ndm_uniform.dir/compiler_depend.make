# Empty compiler generated dependencies file for table2_ndm_uniform.
# This may be replaced when dependencies are built.
