file(REMOVE_RECURSE
  "CMakeFiles/table3_ndm_locality.dir/bench_util.cc.o"
  "CMakeFiles/table3_ndm_locality.dir/bench_util.cc.o.d"
  "CMakeFiles/table3_ndm_locality.dir/table3_ndm_locality.cpp.o"
  "CMakeFiles/table3_ndm_locality.dir/table3_ndm_locality.cpp.o.d"
  "table3_ndm_locality"
  "table3_ndm_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ndm_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
