# Empty dependencies file for table3_ndm_locality.
# This may be replaced when dependencies are built.
