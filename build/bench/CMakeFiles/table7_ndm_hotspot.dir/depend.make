# Empty dependencies file for table7_ndm_hotspot.
# This may be replaced when dependencies are built.
