file(REMOVE_RECURSE
  "CMakeFiles/table7_ndm_hotspot.dir/bench_util.cc.o"
  "CMakeFiles/table7_ndm_hotspot.dir/bench_util.cc.o.d"
  "CMakeFiles/table7_ndm_hotspot.dir/table7_ndm_hotspot.cpp.o"
  "CMakeFiles/table7_ndm_hotspot.dir/table7_ndm_hotspot.cpp.o.d"
  "table7_ndm_hotspot"
  "table7_ndm_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ndm_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
