file(REMOVE_RECURSE
  "CMakeFiles/ablation_detection_latency.dir/ablation_detection_latency.cpp.o"
  "CMakeFiles/ablation_detection_latency.dir/ablation_detection_latency.cpp.o.d"
  "CMakeFiles/ablation_detection_latency.dir/bench_util.cc.o"
  "CMakeFiles/ablation_detection_latency.dir/bench_util.cc.o.d"
  "ablation_detection_latency"
  "ablation_detection_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detection_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
