# Empty dependencies file for table4_ndm_bitrev.
# This may be replaced when dependencies are built.
