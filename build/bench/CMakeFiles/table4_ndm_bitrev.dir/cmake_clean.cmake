file(REMOVE_RECURSE
  "CMakeFiles/table4_ndm_bitrev.dir/bench_util.cc.o"
  "CMakeFiles/table4_ndm_bitrev.dir/bench_util.cc.o.d"
  "CMakeFiles/table4_ndm_bitrev.dir/table4_ndm_bitrev.cpp.o"
  "CMakeFiles/table4_ndm_bitrev.dir/table4_ndm_bitrev.cpp.o.d"
  "table4_ndm_bitrev"
  "table4_ndm_bitrev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ndm_bitrev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
