# Empty compiler generated dependencies file for microbench_router.
# This may be replaced when dependencies are built.
