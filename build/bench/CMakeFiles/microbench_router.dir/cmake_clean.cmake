file(REMOVE_RECURSE
  "CMakeFiles/microbench_router.dir/microbench_router.cpp.o"
  "CMakeFiles/microbench_router.dir/microbench_router.cpp.o.d"
  "microbench_router"
  "microbench_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
