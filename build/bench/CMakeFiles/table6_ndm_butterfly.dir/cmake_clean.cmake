file(REMOVE_RECURSE
  "CMakeFiles/table6_ndm_butterfly.dir/bench_util.cc.o"
  "CMakeFiles/table6_ndm_butterfly.dir/bench_util.cc.o.d"
  "CMakeFiles/table6_ndm_butterfly.dir/table6_ndm_butterfly.cpp.o"
  "CMakeFiles/table6_ndm_butterfly.dir/table6_ndm_butterfly.cpp.o.d"
  "table6_ndm_butterfly"
  "table6_ndm_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ndm_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
