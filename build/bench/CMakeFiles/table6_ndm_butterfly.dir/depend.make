# Empty dependencies file for table6_ndm_butterfly.
# This may be replaced when dependencies are built.
