file(REMOVE_RECURSE
  "CMakeFiles/ablation_vc_count.dir/ablation_vc_count.cpp.o"
  "CMakeFiles/ablation_vc_count.dir/ablation_vc_count.cpp.o.d"
  "CMakeFiles/ablation_vc_count.dir/bench_util.cc.o"
  "CMakeFiles/ablation_vc_count.dir/bench_util.cc.o.d"
  "ablation_vc_count"
  "ablation_vc_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vc_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
