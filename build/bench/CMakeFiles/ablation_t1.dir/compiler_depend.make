# Empty compiler generated dependencies file for ablation_t1.
# This may be replaced when dependencies are built.
