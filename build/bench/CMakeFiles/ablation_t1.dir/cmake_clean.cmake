file(REMOVE_RECURSE
  "CMakeFiles/ablation_t1.dir/ablation_t1.cpp.o"
  "CMakeFiles/ablation_t1.dir/ablation_t1.cpp.o.d"
  "CMakeFiles/ablation_t1.dir/bench_util.cc.o"
  "CMakeFiles/ablation_t1.dir/bench_util.cc.o.d"
  "ablation_t1"
  "ablation_t1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_t1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
