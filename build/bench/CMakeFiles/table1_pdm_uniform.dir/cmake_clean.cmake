file(REMOVE_RECURSE
  "CMakeFiles/table1_pdm_uniform.dir/bench_util.cc.o"
  "CMakeFiles/table1_pdm_uniform.dir/bench_util.cc.o.d"
  "CMakeFiles/table1_pdm_uniform.dir/table1_pdm_uniform.cpp.o"
  "CMakeFiles/table1_pdm_uniform.dir/table1_pdm_uniform.cpp.o.d"
  "table1_pdm_uniform"
  "table1_pdm_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pdm_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
