# Empty dependencies file for table1_pdm_uniform.
# This may be replaced when dependencies are built.
