file(REMOVE_RECURSE
  "CMakeFiles/ablation_injection_limit.dir/ablation_injection_limit.cpp.o"
  "CMakeFiles/ablation_injection_limit.dir/ablation_injection_limit.cpp.o.d"
  "CMakeFiles/ablation_injection_limit.dir/bench_util.cc.o"
  "CMakeFiles/ablation_injection_limit.dir/bench_util.cc.o.d"
  "ablation_injection_limit"
  "ablation_injection_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_injection_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
