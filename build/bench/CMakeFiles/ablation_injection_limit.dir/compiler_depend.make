# Empty compiler generated dependencies file for ablation_injection_limit.
# This may be replaced when dependencies are built.
