file(REMOVE_RECURSE
  "CMakeFiles/ablation_gp_rearm.dir/ablation_gp_rearm.cpp.o"
  "CMakeFiles/ablation_gp_rearm.dir/ablation_gp_rearm.cpp.o.d"
  "CMakeFiles/ablation_gp_rearm.dir/bench_util.cc.o"
  "CMakeFiles/ablation_gp_rearm.dir/bench_util.cc.o.d"
  "ablation_gp_rearm"
  "ablation_gp_rearm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gp_rearm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
