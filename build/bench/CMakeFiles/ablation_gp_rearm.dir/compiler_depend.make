# Empty compiler generated dependencies file for ablation_gp_rearm.
# This may be replaced when dependencies are built.
