file(REMOVE_RECURSE
  "CMakeFiles/table5_ndm_shuffle.dir/bench_util.cc.o"
  "CMakeFiles/table5_ndm_shuffle.dir/bench_util.cc.o.d"
  "CMakeFiles/table5_ndm_shuffle.dir/table5_ndm_shuffle.cpp.o"
  "CMakeFiles/table5_ndm_shuffle.dir/table5_ndm_shuffle.cpp.o.d"
  "table5_ndm_shuffle"
  "table5_ndm_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ndm_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
