# Empty compiler generated dependencies file for table5_ndm_shuffle.
# This may be replaced when dependencies are built.
